//! Versioned on-disk trace corpus: record shot/round defect streams once,
//! replay them everywhere.
//!
//! Every accuracy number produced by the in-process Monte-Carlo harness is
//! tied to the run that sampled it — two backends, two worker counts, or
//! two checkouts cannot be compared shot-for-shot unless they resample the
//! exact same stream. A [`TraceCorpus`] decouples sampling from decoding:
//! the circuit-level sampler writes its shots to a compact binary file
//! (round-major defect records plus provenance), and any pipeline —
//! batch, stream, or windowed, on any backend with any worker count —
//! replays the identical shots later (see `mb_decoder::replay`).
//!
//! # File format (version 1, extension `.mbtc`)
//!
//! All integers little-endian; `varint` is LEB128 (7 bits per byte, high
//! bit = continuation).
//!
//! ```text
//! header:
//!   magic      4 bytes  "MBTC"
//!   version    u16      1
//!   flags      u16      bit 0 HAS_TRUTH, bit 1 HAS_WEIGHTS (others invalid)
//!   num_layers u32      rounds per record
//!   graph_fp   u64      fingerprint of the decoding graph (see
//!                       [`graph_fingerprint`])
//!   prov_len   u32      length of the provenance JSON in bytes
//!   provenance prov_len UTF-8 JSON (code / noise / seed metadata)
//! records (repeated):
//!   marker     1 byte   0x01
//!   observable u64      ground-truth logical flips   (iff HAS_TRUTH)
//!   log_weight f64 bits importance-sampling log-LR   (iff HAS_WEIGHTS)
//!   per layer (num_layers times):
//!     count    varint   defects in this layer
//!     defects  varints  first absolute, then strictly positive deltas
//! trailer:
//!   marker     1 byte   0x00
//!   count      varint   number of records
//!   checksum   u64      FNV-1a 64 over every preceding byte of the file
//! ```
//!
//! The explicit record/end markers make truncation detectable mid-file
//! ([`CorpusError::Truncated`]), the trailer count catches dropped
//! records, and the checksum catches bit corruption
//! ([`CorpusError::ChecksumMismatch`]). The graph fingerprint stops a
//! corpus recorded for one code from being silently replayed on another
//! ([`CorpusError::GraphMismatch`]).
//!
//! # Example
//!
//! ```
//! use mb_graph::circuit::CircuitLevelCode;
//! use mb_graph::corpus::{graph_fingerprint, CorpusHeader, TraceCorpus, TraceRecord};
//! use mb_graph::json::JsonValue;
//! use rand::SeedableRng;
//!
//! let circuit = CircuitLevelCode::rotated(3, 3, 0.02).compile();
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let mut corpus = TraceCorpus::new(CorpusHeader {
//!     num_layers: circuit.graph().num_layers(),
//!     graph_fingerprint: graph_fingerprint(circuit.graph()),
//!     has_truth: true,
//!     has_weights: false,
//!     provenance: JsonValue::Null,
//! });
//! for _ in 0..16 {
//!     let shot = circuit.sampler().sample(&mut rng);
//!     corpus.records.push(TraceRecord::from_shot(circuit.graph(), &shot, 0.0));
//! }
//! let bytes = corpus.encode();
//! let back = TraceCorpus::decode(&bytes).unwrap();
//! assert_eq!(back, corpus);
//! assert!(back.validate_for(circuit.graph()).is_ok());
//! ```

use crate::graph::DecodingGraph;
use crate::json::JsonValue;
use crate::syndrome::{ErrorPattern, Shot, SyndromePattern};
use crate::types::{ObservableMask, VertexIndex};
use std::io::Write;
use std::path::Path;

/// Magic bytes opening every corpus file.
pub const CORPUS_MAGIC: [u8; 4] = *b"MBTC";

/// The format version this build reads and writes.
pub const CORPUS_VERSION: u16 = 1;

const FLAG_HAS_TRUTH: u16 = 1 << 0;
const FLAG_HAS_WEIGHTS: u16 = 1 << 1;
const RECORD_MARKER: u8 = 0x01;
const END_MARKER: u8 = 0x00;

/// Typed failure of corpus encoding, decoding, or validation — corrupt
/// input is reported, never panicked on.
#[derive(Debug)]
pub enum CorpusError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The file does not start with [`CORPUS_MAGIC`].
    BadMagic,
    /// The file's format version is not [`CORPUS_VERSION`].
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
    },
    /// The header carries flag bits this build does not know.
    UnknownFlags {
        /// The offending flags word.
        flags: u16,
    },
    /// The file ends mid-structure (no end marker / trailer).
    Truncated {
        /// Byte offset at which input ran out.
        offset: usize,
    },
    /// Structurally invalid content at a specific offset.
    Corrupt {
        /// Byte offset of the invalid content.
        offset: usize,
        /// What was wrong.
        message: String,
    },
    /// The trailer checksum does not match the file contents.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        stored: u64,
        /// Checksum computed over the file.
        computed: u64,
    },
    /// The corpus was recorded for a different decoding graph.
    GraphMismatch {
        /// Fingerprint stored in the corpus header.
        corpus: u64,
        /// Fingerprint of the graph offered for replay.
        graph: u64,
    },
    /// A record's round count disagrees with the header's `num_layers`.
    RoundCountMismatch {
        /// Rounds promised by the header.
        expected: usize,
        /// Rounds carried by the record.
        found: usize,
    },
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusError::Io(e) => write!(f, "corpus I/O error: {e}"),
            CorpusError::BadMagic => write!(f, "not a trace corpus (bad magic)"),
            CorpusError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported corpus version {found} (expected {CORPUS_VERSION})"
                )
            }
            CorpusError::UnknownFlags { flags } => {
                write!(f, "corpus header carries unknown flag bits: {flags:#06x}")
            }
            CorpusError::Truncated { offset } => {
                write!(f, "corpus truncated at byte {offset}")
            }
            CorpusError::Corrupt { offset, message } => {
                write!(f, "corpus corrupt at byte {offset}: {message}")
            }
            CorpusError::ChecksumMismatch { stored, computed } => write!(
                f,
                "corpus checksum mismatch: trailer {stored:#018x}, contents {computed:#018x}"
            ),
            CorpusError::GraphMismatch { corpus, graph } => write!(
                f,
                "corpus was recorded for graph {corpus:#018x}, not {graph:#018x}"
            ),
            CorpusError::RoundCountMismatch { expected, found } => write!(
                f,
                "record has {found} rounds but the corpus header promises {expected}"
            ),
        }
    }
}

impl std::error::Error for CorpusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CorpusError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CorpusError {
    fn from(e: std::io::Error) -> Self {
        CorpusError::Io(e)
    }
}

/// FNV-1a 64-bit fold of one byte into a running hash.
#[inline]
fn fnv1a(hash: u64, byte: u8) -> u64 {
    (hash ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01B3)
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

fn fnv1a_bytes(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash = fnv1a(hash, b);
    }
    hash
}

/// Structural fingerprint of a decoding graph: vertex positions and
/// virtual flags, edge endpoints, weights, error probabilities, and
/// observable masks, FNV-1a folded in deterministic order. Two graphs
/// with the same fingerprint decode a corpus identically; a corpus header
/// stores the fingerprint of the graph it was recorded on so replay on a
/// mismatched graph fails typed instead of producing garbage.
pub fn graph_fingerprint(graph: &DecodingGraph) -> u64 {
    let mut hash = FNV_OFFSET;
    let fold_u64 = |hash: &mut u64, value: u64| {
        *hash = fnv1a_bytes(*hash, &value.to_le_bytes());
    };
    fold_u64(&mut hash, graph.vertex_count() as u64);
    fold_u64(&mut hash, graph.num_layers() as u64);
    for v in 0..graph.vertex_count() {
        let info = graph.vertex(v);
        fold_u64(&mut hash, info.position.t as u64);
        fold_u64(&mut hash, info.position.i as u64);
        fold_u64(&mut hash, info.position.j as u64);
        fold_u64(&mut hash, u64::from(graph.is_virtual(v)));
    }
    fold_u64(&mut hash, graph.edge_count() as u64);
    for e in 0..graph.edge_count() {
        let info = graph.edge(e);
        fold_u64(&mut hash, info.vertices.0 as u64);
        fold_u64(&mut hash, info.vertices.1 as u64);
        fold_u64(&mut hash, info.weight as u64);
        fold_u64(&mut hash, info.error_probability.to_bits());
        fold_u64(&mut hash, info.observable_mask);
    }
    hash
}

/// Corpus-wide metadata written once at the head of the file.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusHeader {
    /// Rounds (fusion layers) per record — must equal the decoding graph's
    /// `num_layers`.
    pub num_layers: usize,
    /// [`graph_fingerprint`] of the graph the corpus was recorded on.
    pub graph_fingerprint: u64,
    /// Whether records carry ground-truth observables.
    pub has_truth: bool,
    /// Whether records carry importance-sampling log-likelihood-ratio
    /// weights (see `mb_graph::circuit::MechanismTilt`).
    pub has_weights: bool,
    /// Free-form provenance: code parameters, noise model, sampler seed.
    /// Serialized as compact JSON; [`JsonValue::Null`] when absent.
    pub provenance: JsonValue,
}

/// One recorded shot: its defects bucketed round-major, plus optional
/// ground truth and importance weight.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// `rounds[t]` holds the defect vertices of fusion layer `t`, strictly
    /// increasing.
    pub rounds: Vec<Vec<VertexIndex>>,
    /// Ground-truth logical flips (zero when the corpus has no truth).
    pub observable: ObservableMask,
    /// Log of the importance-sampling likelihood ratio `p(shot)/q(shot)`
    /// under the tilt the corpus was recorded with (zero — weight 1 — for
    /// untilted corpora).
    pub log_weight: f64,
}

impl TraceRecord {
    /// Buckets a sampled shot into its round-major record.
    pub fn from_shot(graph: &DecodingGraph, shot: &Shot, log_weight: f64) -> Self {
        Self {
            rounds: shot.syndrome.split_by_layer(graph),
            observable: shot.observable,
            log_weight,
        }
    }

    /// The full syndrome: union of all rounds.
    pub fn syndrome(&self) -> SyndromePattern {
        SyndromePattern::new(self.rounds.iter().flatten().copied().collect())
    }

    /// The importance-sampling weight `exp(log_weight)`.
    pub fn weight(&self) -> f64 {
        self.log_weight.exp()
    }

    /// Reassembles a decodable [`Shot`]. The physical error pattern is not
    /// stored in a corpus, so `error` comes back empty — everything the
    /// decoders and the logical-error accounting consume (syndrome and
    /// ground-truth observable) round-trips exactly.
    pub fn to_shot(&self) -> Shot {
        Shot {
            error: ErrorPattern::default(),
            syndrome: self.syndrome(),
            observable: self.observable,
        }
    }

    /// Total defect count across rounds.
    pub fn defect_count(&self) -> usize {
        self.rounds.iter().map(Vec::len).sum()
    }
}

/// Streaming corpus writer: emits the header up front, one record per
/// [`CorpusWriter::push`], and the trailer on [`CorpusWriter::finish`] —
/// arbitrarily large corpora are recorded without buffering them.
#[derive(Debug)]
pub struct CorpusWriter<W: Write> {
    sink: W,
    header: CorpusHeader,
    hash: u64,
    records: u64,
}

impl<W: Write> CorpusWriter<W> {
    /// Opens a corpus on `sink` and writes the header.
    pub fn new(mut sink: W, header: CorpusHeader) -> Result<Self, CorpusError> {
        let mut hash = FNV_OFFSET;
        let mut out = Vec::new();
        out.extend_from_slice(&CORPUS_MAGIC);
        out.extend_from_slice(&CORPUS_VERSION.to_le_bytes());
        let mut flags = 0u16;
        if header.has_truth {
            flags |= FLAG_HAS_TRUTH;
        }
        if header.has_weights {
            flags |= FLAG_HAS_WEIGHTS;
        }
        out.extend_from_slice(&flags.to_le_bytes());
        out.extend_from_slice(
            &u32::try_from(header.num_layers)
                .expect("layer count fits u32")
                .to_le_bytes(),
        );
        out.extend_from_slice(&header.graph_fingerprint.to_le_bytes());
        let provenance = header.provenance.to_pretty_string();
        out.extend_from_slice(
            &u32::try_from(provenance.len())
                .expect("provenance fits u32")
                .to_le_bytes(),
        );
        out.extend_from_slice(provenance.as_bytes());
        hash = fnv1a_bytes(hash, &out);
        sink.write_all(&out)?;
        Ok(Self {
            sink,
            header,
            hash,
            records: 0,
        })
    }

    /// Appends one record.
    ///
    /// Fails with [`CorpusError::RoundCountMismatch`] when the record's
    /// round count disagrees with the header, and with
    /// [`CorpusError::Corrupt`] when a round's defects are not strictly
    /// increasing.
    pub fn push(&mut self, record: &TraceRecord) -> Result<(), CorpusError> {
        if record.rounds.len() != self.header.num_layers {
            return Err(CorpusError::RoundCountMismatch {
                expected: self.header.num_layers,
                found: record.rounds.len(),
            });
        }
        let mut out = vec![RECORD_MARKER];
        if self.header.has_truth {
            out.extend_from_slice(&record.observable.to_le_bytes());
        }
        if self.header.has_weights {
            out.extend_from_slice(&record.log_weight.to_bits().to_le_bytes());
        }
        for round in &record.rounds {
            write_varint(&mut out, round.len() as u64);
            let mut previous: Option<VertexIndex> = None;
            for &defect in round {
                match previous {
                    None => write_varint(&mut out, defect as u64),
                    Some(p) if defect > p => write_varint(&mut out, (defect - p) as u64),
                    Some(p) => {
                        return Err(CorpusError::Corrupt {
                            offset: 0,
                            message: format!(
                                "round defects not strictly increasing ({p} then {defect})"
                            ),
                        })
                    }
                }
                previous = Some(defect);
            }
        }
        self.hash = fnv1a_bytes(self.hash, &out);
        self.sink.write_all(&out)?;
        self.records += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Writes the trailer (end marker, record count, checksum), flushes,
    /// and returns the sink.
    pub fn finish(mut self) -> Result<W, CorpusError> {
        let mut out = vec![END_MARKER];
        write_varint(&mut out, self.records);
        self.hash = fnv1a_bytes(self.hash, &out);
        out.extend_from_slice(&self.hash.to_le_bytes());
        self.sink.write_all(&out)?;
        self.sink.flush()?;
        Ok(self.sink)
    }
}

fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Byte-slice reader tracking its offset for error reporting.
struct Reader<'a> {
    bytes: &'a [u8],
    offset: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CorpusError> {
        if self.offset + n > self.bytes.len() {
            return Err(CorpusError::Truncated {
                offset: self.bytes.len(),
            });
        }
        let slice = &self.bytes[self.offset..self.offset + n];
        self.offset += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CorpusError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CorpusError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, CorpusError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CorpusError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn varint(&mut self) -> Result<u64, CorpusError> {
        let start = self.offset;
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 63 && byte > 1 {
                return Err(CorpusError::Corrupt {
                    offset: start,
                    message: "varint overflows u64".into(),
                });
            }
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }
}

/// A fully materialized trace corpus: header plus records.
///
/// For corpora too large to hold in memory, write with [`CorpusWriter`]
/// directly; this type is the convenience container the replay paths and
/// the bench bins use.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceCorpus {
    /// Corpus-wide metadata.
    pub header: CorpusHeader,
    /// The recorded shots, in recording order.
    pub records: Vec<TraceRecord>,
}

impl TraceCorpus {
    /// An empty corpus under `header`.
    pub fn new(header: CorpusHeader) -> Self {
        Self {
            header,
            records: Vec::new(),
        }
    }

    /// Serializes to the version-1 binary format.
    pub fn encode(&self) -> Vec<u8> {
        let mut writer = CorpusWriter::new(Vec::new(), self.header.clone())
            .expect("writing to a Vec cannot fail");
        for record in &self.records {
            writer
                .push(record)
                .expect("in-memory records are well-formed");
        }
        writer.finish().expect("writing to a Vec cannot fail")
    }

    /// Parses the version-1 binary format, verifying structure, record
    /// count, and checksum.
    pub fn decode(bytes: &[u8]) -> Result<Self, CorpusError> {
        let mut r = Reader { bytes, offset: 0 };
        if r.take(4)? != CORPUS_MAGIC {
            return Err(CorpusError::BadMagic);
        }
        let version = r.u16()?;
        if version != CORPUS_VERSION {
            return Err(CorpusError::UnsupportedVersion { found: version });
        }
        let flags = r.u16()?;
        if flags & !(FLAG_HAS_TRUTH | FLAG_HAS_WEIGHTS) != 0 {
            return Err(CorpusError::UnknownFlags { flags });
        }
        let has_truth = flags & FLAG_HAS_TRUTH != 0;
        let has_weights = flags & FLAG_HAS_WEIGHTS != 0;
        let num_layers = r.u32()? as usize;
        let graph_fp = r.u64()?;
        let prov_len = r.u32()? as usize;
        let prov_offset = r.offset;
        let prov_bytes = r.take(prov_len)?;
        let prov_text = std::str::from_utf8(prov_bytes).map_err(|e| CorpusError::Corrupt {
            offset: prov_offset,
            message: format!("provenance is not UTF-8: {e}"),
        })?;
        let provenance = crate::json::parse(prov_text).map_err(|e| CorpusError::Corrupt {
            offset: prov_offset + e.offset,
            message: format!("provenance JSON: {}", e.message),
        })?;

        let mut records = Vec::new();
        let declared = loop {
            let marker_offset = r.offset;
            match r.u8()? {
                RECORD_MARKER => {}
                END_MARKER => break r.varint()?,
                other => {
                    return Err(CorpusError::Corrupt {
                        offset: marker_offset,
                        message: format!("invalid record marker {other:#04x}"),
                    })
                }
            }
            let observable = if has_truth { r.u64()? } else { 0 };
            let log_weight = if has_weights {
                f64::from_bits(r.u64()?)
            } else {
                0.0
            };
            let mut rounds = Vec::with_capacity(num_layers);
            for _ in 0..num_layers {
                let count_offset = r.offset;
                let count = r.varint()? as usize;
                let mut round = Vec::with_capacity(count.min(1 << 16));
                let mut previous: Option<u64> = None;
                for _ in 0..count {
                    let raw = r.varint()?;
                    let absolute = match previous {
                        None => raw,
                        Some(p) if raw > 0 => p.checked_add(raw).ok_or(CorpusError::Corrupt {
                            offset: count_offset,
                            message: "defect index overflows u64".into(),
                        })?,
                        Some(_) => {
                            return Err(CorpusError::Corrupt {
                                offset: count_offset,
                                message: "zero delta: defects not strictly increasing".into(),
                            })
                        }
                    };
                    previous = Some(absolute);
                    round.push(absolute as VertexIndex);
                }
                rounds.push(round);
            }
            records.push(TraceRecord {
                rounds,
                observable,
                log_weight,
            });
        };
        if declared != records.len() as u64 {
            return Err(CorpusError::Corrupt {
                offset: r.offset,
                message: format!(
                    "trailer declares {declared} records, file holds {}",
                    records.len()
                ),
            });
        }
        let computed = fnv1a_bytes(FNV_OFFSET, &bytes[..r.offset]);
        let stored = r.u64()?;
        if stored != computed {
            return Err(CorpusError::ChecksumMismatch { stored, computed });
        }
        if r.offset != bytes.len() {
            return Err(CorpusError::Corrupt {
                offset: r.offset,
                message: format!("{} trailing bytes after trailer", bytes.len() - r.offset),
            });
        }
        Ok(Self {
            header: CorpusHeader {
                num_layers,
                graph_fingerprint: graph_fp,
                has_truth,
                has_weights,
                provenance,
            },
            records,
        })
    }

    /// Writes the corpus to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CorpusError> {
        std::fs::write(path, self.encode())?;
        Ok(())
    }

    /// Reads and parses a corpus from `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CorpusError> {
        Self::decode(&std::fs::read(path)?)
    }

    /// Checks the corpus is replayable on `graph`: fingerprint and layer
    /// count match, and every defect is a real vertex of its recorded
    /// layer.
    pub fn validate_for(&self, graph: &DecodingGraph) -> Result<(), CorpusError> {
        let fp = graph_fingerprint(graph);
        if self.header.graph_fingerprint != fp {
            return Err(CorpusError::GraphMismatch {
                corpus: self.header.graph_fingerprint,
                graph: fp,
            });
        }
        if self.header.num_layers != graph.num_layers() {
            return Err(CorpusError::RoundCountMismatch {
                expected: graph.num_layers(),
                found: self.header.num_layers,
            });
        }
        for (index, record) in self.records.iter().enumerate() {
            for (t, round) in record.rounds.iter().enumerate() {
                for &defect in round {
                    let valid = defect < graph.vertex_count()
                        && !graph.is_virtual(defect)
                        && graph.layer_of(defect) == t;
                    if !valid {
                        return Err(CorpusError::Corrupt {
                            offset: 0,
                            message: format!(
                                "record {index}: vertex {defect} is not a real layer-{t} defect"
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitLevelCode;
    use crate::codes::PhenomenologicalCode;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample_corpus(shots: usize, seed: u64) -> (TraceCorpus, std::sync::Arc<DecodingGraph>) {
        let circuit = CircuitLevelCode::rotated(3, 3, 0.03).compile();
        let graph = std::sync::Arc::clone(circuit.graph());
        let mut corpus = TraceCorpus::new(CorpusHeader {
            num_layers: graph.num_layers(),
            graph_fingerprint: graph_fingerprint(&graph),
            has_truth: true,
            has_weights: true,
            provenance: crate::json::parse(r#"{"code":"rotated","d":3}"#).unwrap(),
        });
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for i in 0..shots {
            let shot = circuit.sampler().sample(&mut rng);
            corpus
                .records
                .push(TraceRecord::from_shot(&graph, &shot, i as f64 * 0.125));
        }
        (corpus, graph)
    }

    #[test]
    fn round_trips_bit_exactly() {
        let (corpus, graph) = sample_corpus(64, 9);
        let bytes = corpus.encode();
        let back = TraceCorpus::decode(&bytes).unwrap();
        assert_eq!(back, corpus);
        assert!(back.validate_for(&graph).is_ok());
        // re-encoding is byte-identical (deterministic format)
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn record_syndrome_union_matches_shot() {
        let circuit = CircuitLevelCode::rotated(5, 4, 0.04).compile();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..32 {
            let shot = circuit.sampler().sample(&mut rng);
            let record = TraceRecord::from_shot(circuit.graph(), &shot, 0.0);
            assert_eq!(record.syndrome(), shot.syndrome);
            assert_eq!(record.to_shot().observable, shot.observable);
            assert_eq!(record.defect_count(), shot.syndrome.len());
        }
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let (corpus, _) = sample_corpus(8, 1);
        let bytes = corpus.encode();
        for len in 0..bytes.len() {
            let result = TraceCorpus::decode(&bytes[..len]);
            assert!(
                result.is_err(),
                "prefix of {len} bytes must not parse as a corpus"
            );
        }
    }

    #[test]
    fn bit_flips_are_detected() {
        let (corpus, _) = sample_corpus(8, 2);
        let bytes = corpus.encode();
        // flip one bit in every byte position; every mutation must error
        // (structure or checksum), never panic or silently succeed
        for index in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[index] ^= 0x10;
            assert!(
                TraceCorpus::decode(&mutated).is_err(),
                "bit flip at byte {index} must be detected"
            );
        }
    }

    #[test]
    fn wrong_version_and_flags_are_typed() {
        let (corpus, _) = sample_corpus(2, 3);
        let mut bytes = corpus.encode();
        bytes[4] = 99; // version low byte
        assert!(matches!(
            TraceCorpus::decode(&bytes),
            Err(CorpusError::UnsupportedVersion { found: 99 })
        ));

        let mut bytes = corpus.encode();
        bytes[6] |= 0x80; // unknown flag bit
        assert!(matches!(
            TraceCorpus::decode(&bytes),
            Err(CorpusError::UnknownFlags { .. })
        ));

        let mut bytes = corpus.encode();
        bytes[0] = b'X';
        assert!(matches!(
            TraceCorpus::decode(&bytes),
            Err(CorpusError::BadMagic)
        ));
    }

    #[test]
    fn graph_mismatch_is_typed() {
        let (corpus, _) = sample_corpus(4, 4);
        let other = PhenomenologicalCode::rotated(3, 3, 0.01).decoding_graph();
        assert!(matches!(
            corpus.validate_for(&other),
            Err(CorpusError::GraphMismatch { .. })
        ));
    }

    #[test]
    fn fingerprint_separates_codes_and_noise() {
        let a = CircuitLevelCode::rotated(3, 3, 0.01).decoding_graph();
        let b = CircuitLevelCode::rotated(3, 3, 0.02).decoding_graph();
        let c = CircuitLevelCode::rotated(3, 4, 0.01).decoding_graph();
        let a2 = CircuitLevelCode::rotated(3, 3, 0.01).decoding_graph();
        assert_eq!(graph_fingerprint(&a), graph_fingerprint(&a2));
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&b));
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&c));
    }

    #[test]
    fn writer_rejects_round_count_mismatch() {
        let (corpus, _) = sample_corpus(1, 5);
        let mut writer = CorpusWriter::new(Vec::new(), corpus.header.clone()).unwrap();
        let bad = TraceRecord {
            rounds: vec![vec![]],
            observable: 0,
            log_weight: 0.0,
        };
        assert!(matches!(
            writer.push(&bad),
            Err(CorpusError::RoundCountMismatch {
                expected: 3,
                found: 1
            })
        ));
        assert_eq!(writer.records_written(), 0);
    }

    #[test]
    fn writer_rejects_unsorted_defects() {
        let (corpus, _) = sample_corpus(1, 6);
        let mut writer = CorpusWriter::new(Vec::new(), corpus.header.clone()).unwrap();
        let bad = TraceRecord {
            rounds: vec![vec![5, 5], vec![], vec![]],
            observable: 0,
            log_weight: 0.0,
        };
        assert!(matches!(
            writer.push(&bad),
            Err(CorpusError::Corrupt { .. })
        ));
    }

    #[test]
    fn empty_corpus_round_trips() {
        let (mut corpus, graph) = sample_corpus(0, 7);
        corpus.header.provenance = JsonValue::Null;
        let back = TraceCorpus::decode(&corpus.encode()).unwrap();
        assert_eq!(back, corpus);
        assert!(back.validate_for(&graph).is_ok());
        assert!(back.records.is_empty());
    }

    #[test]
    fn flagless_corpus_drops_truth_and_weights() {
        let (mut corpus, _) = sample_corpus(4, 8);
        corpus.header.has_truth = false;
        corpus.header.has_weights = false;
        let back = TraceCorpus::decode(&corpus.encode()).unwrap();
        assert!(back.records.iter().all(|r| r.observable == 0));
        assert!(back.records.iter().all(|r| r.log_weight == 0.0));
        assert_eq!(
            back.records
                .iter()
                .map(TraceRecord::defect_count)
                .sum::<usize>(),
            corpus
                .records
                .iter()
                .map(TraceRecord::defect_count)
                .sum::<usize>(),
        );
    }

    #[test]
    fn save_and_load_round_trip() {
        let (corpus, _) = sample_corpus(16, 10);
        let path = std::env::temp_dir().join("mbtc_selftest.mbtc");
        corpus.save(&path).unwrap();
        let back = TraceCorpus::load(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(back, corpus);
    }

    #[test]
    fn missing_file_is_io_error() {
        let result = TraceCorpus::load("/nonexistent/definitely/missing.mbtc");
        assert!(matches!(result, Err(CorpusError::Io(_))));
    }
}
