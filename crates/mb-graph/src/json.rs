//! Minimal self-contained JSON reader/writer.
//!
//! The build environment has no registry access, so instead of `serde_json`
//! the graph export in [`crate::export`] uses this small module: a generic
//! [`JsonValue`] tree, a recursive-descent parser, and a pretty printer.
//! Numbers round-trip exactly: integer literals are kept as native `u64` /
//! `i64` (full 64-bit fidelity — observable masks may use all 64 bits), and
//! floats are printed with Rust's shortest-roundtrip formatting and
//! re-parsed with `str::parse`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer literal (exact up to `u64::MAX`).
    UInt(u64),
    /// A negative integer literal (exact down to `i64::MIN`).
    Int(i64),
    /// A float literal (or an integer too large for the native types).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; keys are kept sorted for deterministic output.
    Object(BTreeMap<String, JsonValue>),
}

/// Error produced by [`parse`].
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// The value under `key`, when this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number as an `f64`, when this is any numeric variant. Integers
    /// beyond 2^53 lose precision here — use [`JsonValue::as_u64`] /
    /// [`JsonValue::as_i64`] for exact integers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::UInt(x) => Some(*x as f64),
            JsonValue::Int(x) => Some(*x as f64),
            JsonValue::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as a `u64`, when it is an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(x) => Some(*x),
            JsonValue::Int(x) => u64::try_from(*x).ok(),
            JsonValue::Number(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= (1u64 << 53) as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The number as an `i64`, when it is an exact integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::UInt(x) => i64::try_from(*x).ok(),
            JsonValue::Int(x) => Some(*x),
            JsonValue::Number(x) if x.fract() == 0.0 && x.abs() <= (1u64 << 53) as f64 => {
                Some(*x as i64)
            }
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(x) => {
                let _ = write!(out, "{x}");
            }
            JsonValue::Int(x) => {
                let _ = write!(out, "{x}");
            }
            JsonValue::Number(x) => write_number(out, *x),
            JsonValue::String(s) => write_string(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, x: f64) {
    if x.fract() == 0.0 && x.abs() < (1u64 << 53) as f64 {
        let _ = write!(out, "{}", x as i64);
    } else {
        // Rust's shortest-roundtrip float formatting; parses back exactly
        let _ = write!(out, "{x:?}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_keyword("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{keyword}'")))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {}
                b'.' | b'e' | b'E' | b'+' | b'-' => is_float = true,
                _ => break,
            }
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            // exact 64-bit integers; fall through to f64 only on overflow
            if negative {
                if let Ok(x) = text.parse::<i64>() {
                    return Ok(JsonValue::Int(x));
                }
            } else if let Ok(x) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(x));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.error(&format!("invalid number '{text}'")))
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.error("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // surrogate pairs are not needed by the export format
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 character
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "3.25"] {
            let value = parse(text).unwrap();
            assert_eq!(parse(&value.to_pretty_string()).unwrap(), value, "{text}");
        }
    }

    #[test]
    fn integer_literals_parse_to_native_types() {
        assert_eq!(parse("7").unwrap(), JsonValue::UInt(7));
        assert_eq!(parse("-7").unwrap(), JsonValue::Int(-7));
        assert_eq!(parse("0").unwrap(), JsonValue::UInt(0));
    }

    #[test]
    fn full_u64_range_round_trips_exactly() {
        // observable masks may use all 64 bits; f64 would corrupt these
        for x in [u64::MAX, (1 << 60) | 1, (1 << 53) + 1] {
            let printed = JsonValue::UInt(x).to_pretty_string();
            assert_eq!(parse(&printed).unwrap().as_u64(), Some(x), "{printed}");
        }
        let printed = JsonValue::Int(i64::MIN).to_pretty_string();
        assert_eq!(parse(&printed).unwrap().as_i64(), Some(i64::MIN));
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1e-9, 0.005, std::f64::consts::PI, 1.0 / 3.0] {
            let printed = JsonValue::Number(x).to_pretty_string();
            assert_eq!(parse(&printed).unwrap().as_f64(), Some(x), "{printed}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line\nbreak \"quoted\" back\\slash\ttab";
        let value = JsonValue::String(original.to_string());
        let printed = value.to_pretty_string();
        assert_eq!(parse(&printed).unwrap(), value);
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a": [1, 2, [3, {"b": null}]], "c": {"d": true}}"#;
        let value = parse(text).unwrap();
        assert_eq!(parse(&value.to_pretty_string()).unwrap(), value);
        assert_eq!(
            value.get("c").and_then(|c| c.get("d")),
            Some(&JsonValue::Bool(true))
        );
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse("[1, 2,").unwrap_err();
        assert!(err.offset >= 6, "offset {}", err.offset);
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[1] trailing").is_err());
    }

    #[test]
    fn integer_accessors_enforce_exactness() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(parse("-7").unwrap().as_u64(), None);
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        // oversized integer falls back to f64 and is rejected as exact
        let huge = "99999999999999999999999999999";
        assert!(matches!(parse(huge).unwrap(), JsonValue::Number(_)));
        assert_eq!(parse(huge).unwrap().as_u64(), None);
    }
}
