//! Decoding-graph builders for the QEC codes evaluated in the paper.
//!
//! The paper's correctness experiment (§A.6) covers the quantum repetition
//! code and the rotated surface code under code-capacity, phenomenological,
//! and circuit-level noise. This module provides the first two noise models
//! for the repetition, planar, and rotated surface codes; circuit-level
//! graphs are built by [`crate::circuit::CircuitLevelCode`] from an
//! explicit syndrome-extraction fault model. All rotated-lattice geometry
//! is shared through [`crate::lattice::RotatedLattice`].
//!
//! The rotated-surface-code vertex counting follows the paper's Table 4:
//! `(d²-1)/2` stabilizer vertices plus `d+1` virtual vertices per
//! measurement round.

use crate::graph::{DecodingGraph, DecodingGraphBuilder};
use crate::lattice::RotatedLattice;
use crate::types::{Position, VertexIndex, Weight};
use crate::weights::WeightScaler;
use std::collections::HashMap;

/// Weight used for every edge when all error probabilities are identical.
pub const UNIFORM_WEIGHT: Weight = 2;

/// Quantum repetition code under code-capacity noise.
///
/// The decoding graph is a path: `virtual — v_1 — … — v_{d-1} — virtual`
/// with `d` edges, one per data qubit.
///
/// ```
/// use mb_graph::codes::CodeCapacityRepetitionCode;
///
/// let graph = CodeCapacityRepetitionCode::new(5, 0.1).decoding_graph();
/// assert_eq!(graph.regular_count(), 4); // d-1 stabilizers
/// assert_eq!(graph.edge_count(), 5); // d data qubits
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodeCapacityRepetitionCode {
    /// Code distance (number of data qubits).
    pub d: usize,
    /// Bit-flip probability per data qubit.
    pub p: f64,
}

impl CodeCapacityRepetitionCode {
    /// Creates a distance-`d` repetition code with error probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `d < 2` or `p` is not a probability.
    pub fn new(d: usize, p: f64) -> Self {
        assert!(d >= 2, "repetition code needs d >= 2");
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        Self { d, p }
    }

    /// Builds the decoding graph.
    pub fn decoding_graph(&self) -> DecodingGraph {
        let mut b = DecodingGraphBuilder::new();
        let left = b.add_virtual_vertex(Position::new(0, 0, -1));
        let stabilizers: Vec<VertexIndex> = (0..self.d - 1)
            .map(|j| b.add_vertex(Position::new(0, 0, j as i64)))
            .collect();
        let right = b.add_virtual_vertex(Position::new(0, 0, self.d as i64 - 1));
        let mut prev = left;
        for (j, &s) in stabilizers.iter().enumerate() {
            let mask = if j == 0 { 1 } else { 0 };
            b.add_edge(prev, s, UNIFORM_WEIGHT, self.p, mask);
            prev = s;
        }
        b.add_edge(prev, right, UNIFORM_WEIGHT, self.p, 0);
        b.build()
    }
}

/// Planar (unrotated) surface code under code-capacity noise, decoding a
/// single error type.
///
/// The graph is a `d × (d-1)` grid of stabilizers with one virtual vertex at
/// each end of every row; the `d² + (d-1)²` edges are the data qubits.
///
/// ```
/// use mb_graph::codes::CodeCapacityPlanarCode;
///
/// let graph = CodeCapacityPlanarCode::new(3, 0.05).decoding_graph();
/// assert_eq!(graph.regular_count(), 6); // d(d-1)
/// assert_eq!(graph.edge_count(), 13); // d² + (d-1)²
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodeCapacityPlanarCode {
    /// Code distance.
    pub d: usize,
    /// Error probability per data qubit.
    pub p: f64,
}

impl CodeCapacityPlanarCode {
    /// Creates a distance-`d` planar code with error probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `d < 2` or `p` is not a probability.
    pub fn new(d: usize, p: f64) -> Self {
        assert!(d >= 2, "planar code needs d >= 2");
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        Self { d, p }
    }

    /// Builds the decoding graph.
    pub fn decoding_graph(&self) -> DecodingGraph {
        let d = self.d;
        let mut b = DecodingGraphBuilder::new();
        // regular stabilizers: rows 0..d, columns 0..d-1
        let mut idx = HashMap::new();
        for r in 0..d {
            for c in 0..d - 1 {
                idx.insert((r, c), b.add_vertex(Position::new(0, r as i64, c as i64)));
            }
        }
        let mut left = Vec::new();
        let mut right = Vec::new();
        for r in 0..d {
            left.push(b.add_virtual_vertex(Position::new(0, r as i64, -1)));
            right.push(b.add_virtual_vertex(Position::new(0, r as i64, d as i64 - 1)));
        }
        // horizontal edges (d per row), the leftmost carries the observable
        for r in 0..d {
            b.add_edge(left[r], idx[&(r, 0)], UNIFORM_WEIGHT, self.p, 1);
            for c in 0..d - 2 {
                b.add_edge(idx[&(r, c)], idx[&(r, c + 1)], UNIFORM_WEIGHT, self.p, 0);
            }
            b.add_edge(idx[&(r, d - 2)], right[r], UNIFORM_WEIGHT, self.p, 0);
        }
        // vertical edges
        for r in 0..d - 1 {
            for c in 0..d - 1 {
                b.add_edge(idx[&(r, c)], idx[&(r + 1, c)], UNIFORM_WEIGHT, self.p, 0);
            }
        }
        b.build()
    }
}

/// Rotated surface code under code-capacity noise, decoding a single error
/// type (X errors detected by Z stabilizers).
///
/// Per measurement round this graph has `(d²-1)/2` stabilizer vertices and
/// `d+1` virtual vertices, matching Table 4 of the paper. The lattice
/// geometry is shared with the other rotated-code noise models through
/// [`RotatedLattice`].
///
/// ```
/// use mb_graph::codes::CodeCapacityRotatedCode;
///
/// let graph = CodeCapacityRotatedCode::new(5, 0.01).decoding_graph();
/// assert_eq!(graph.regular_count(), 12); // (d²-1)/2
/// assert_eq!(graph.virtual_count(), 6); // d+1
/// assert_eq!(graph.edge_count(), 25); // one per data qubit
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodeCapacityRotatedCode {
    /// Code distance (odd).
    pub d: usize,
    /// Error probability per data qubit.
    pub p: f64,
}

impl CodeCapacityRotatedCode {
    /// Creates a distance-`d` rotated code with error probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is even, `d < 3`, or `p` is not a probability.
    pub fn new(d: usize, p: f64) -> Self {
        assert!(d >= 3 && d % 2 == 1, "rotated code needs odd d >= 3");
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        Self { d, p }
    }

    /// Builds the single-round decoding graph.
    pub fn decoding_graph(&self) -> DecodingGraph {
        let lattice = RotatedLattice::new(self.d);
        let mut b = DecodingGraphBuilder::new();
        let idx: HashMap<(i64, i64), VertexIndex> = lattice.add_layer_vertices(&mut b, 0);
        for (r, c) in lattice.data_qubits() {
            let plaquettes = lattice.plaquettes_of_data(r, c);
            let u = idx[&(plaquettes[0].0, plaquettes[0].1)];
            let v = idx[&(plaquettes[1].0, plaquettes[1].1)];
            let mask = lattice.observable_mask_of_data(r, c);
            b.add_edge(u, v, UNIFORM_WEIGHT, self.p, mask);
        }
        b.build()
    }
}

/// Phenomenological noise: `rounds` noisy measurement rounds of a 2-D code,
/// with independent data errors each round and measurement errors between
/// rounds.
///
/// The graph stacks `rounds` copies of the single-round base graph
/// (space-like edges) and connects consecutive copies of each stabilizer
/// with time-like measurement-error edges. Unlike circuit-level noise
/// ([`crate::circuit::CircuitLevelCode`]) there are **no diagonal**
/// space-time edges: every error mechanism is either purely spatial or
/// purely temporal.
///
/// ```
/// use mb_graph::codes::PhenomenologicalCode;
///
/// let graph = PhenomenologicalCode::rotated(3, 3, 0.01).decoding_graph();
/// assert_eq!(graph.num_layers(), 3);
/// // 3 layers × (d²-1)/2 stabilizers + 3 layers × (d+1) virtual vertices
/// assert_eq!(graph.vertex_count(), 3 * (4 + 4));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PhenomenologicalCode {
    /// The single-round (code capacity) graph to replicate.
    pub base: DecodingGraph,
    /// Number of measurement rounds (detector layers).
    pub rounds: usize,
    /// Measurement error probability (time-like edges).
    pub p_measurement: f64,
}

impl PhenomenologicalCode {
    /// Stacks `rounds` copies of `base` with time-like measurement-error
    /// edges of probability `p_measurement`.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0` or `p_measurement` is not a probability.
    pub fn new(base: DecodingGraph, rounds: usize, p_measurement: f64) -> Self {
        assert!(rounds >= 1, "need at least one measurement round");
        assert!(
            (0.0..=1.0).contains(&p_measurement),
            "p_measurement must be a probability"
        );
        Self {
            base,
            rounds,
            p_measurement,
        }
    }

    /// Convenience constructor for the rotated surface code with equal data
    /// and measurement error probability and `d` rounds, the configuration
    /// used throughout the paper's evaluation.
    pub fn rotated(d: usize, rounds: usize, p: f64) -> Self {
        Self::new(
            CodeCapacityRotatedCode::new(d, p).decoding_graph(),
            rounds,
            p,
        )
    }

    /// Builds the 3-D decoding graph.
    pub fn decoding_graph(&self) -> DecodingGraph {
        let base = &self.base;
        let mut b = DecodingGraphBuilder::new();
        let probabilities: Vec<f64> = base
            .edges()
            .iter()
            .map(|e| e.error_probability)
            .chain(std::iter::once(self.p_measurement))
            .filter(|&p| p > 0.0 && p < 0.5)
            .collect();
        let uniform = probabilities
            .windows(2)
            .all(|w| (w[0] - w[1]).abs() < 1e-12);
        let scaler = probabilities
            .iter()
            .copied()
            .fold(None::<f64>, |acc, p| Some(acc.map_or(p, |a: f64| a.min(p))))
            .map(|pmin| WeightScaler::new(pmin, 14));
        let weight_of = |p: f64| -> Weight {
            if uniform {
                UNIFORM_WEIGHT
            } else {
                scaler.map_or(UNIFORM_WEIGHT, |s| s.weight_of(p))
            }
        };
        // layer-replicated vertices
        let mut layer_map: Vec<Vec<VertexIndex>> = Vec::with_capacity(self.rounds);
        for t in 0..self.rounds {
            let mut map = Vec::with_capacity(base.vertex_count());
            for v in 0..base.vertex_count() {
                let info = base.vertex(v);
                let pos = Position::new(t as i64, info.position.i, info.position.j);
                let new = if info.is_virtual {
                    b.add_virtual_vertex(pos)
                } else {
                    b.add_vertex(pos)
                };
                map.push(new);
            }
            layer_map.push(map);
        }
        // space-like edges in every layer
        #[allow(clippy::needless_range_loop)] // `t` pairs `layer_map` with round indices
        for t in 0..self.rounds {
            for e in base.edges() {
                let (u, v) = e.vertices;
                b.add_edge(
                    layer_map[t][u],
                    layer_map[t][v],
                    weight_of(e.error_probability),
                    e.error_probability,
                    e.observable_mask,
                );
            }
        }
        // time-like measurement-error edges
        for t in 0..self.rounds.saturating_sub(1) {
            #[allow(clippy::needless_range_loop)] // `v` indexes both layers of `layer_map`
            for v in 0..base.vertex_count() {
                if base.vertex(v).is_virtual {
                    continue;
                }
                b.add_edge(
                    layer_map[t][v],
                    layer_map[t + 1][v],
                    weight_of(self.p_measurement),
                    self.p_measurement,
                    0,
                );
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::distance_between;
    use crate::syndrome::ErrorPattern;

    #[test]
    fn repetition_code_structure() {
        for d in [2, 3, 5, 9] {
            let g = CodeCapacityRepetitionCode::new(d, 0.1).decoding_graph();
            assert_eq!(g.regular_count(), d - 1);
            assert_eq!(g.virtual_count(), 2);
            assert_eq!(g.edge_count(), d);
            assert!(g.validate().is_ok());
        }
    }

    #[test]
    fn planar_code_structure() {
        for d in [3, 5, 7] {
            let g = CodeCapacityPlanarCode::new(d, 0.1).decoding_graph();
            assert_eq!(g.regular_count(), d * (d - 1));
            assert_eq!(g.virtual_count(), 2 * d);
            assert_eq!(g.edge_count(), d * d + (d - 1) * (d - 1));
            assert!(g.validate().is_ok());
        }
    }

    #[test]
    fn rotated_code_structure_matches_table4_counting() {
        for d in [3usize, 5, 7, 9, 11, 13] {
            let g = CodeCapacityRotatedCode::new(d, 0.01).decoding_graph();
            assert_eq!(g.regular_count(), (d * d - 1) / 2, "d={d}");
            assert_eq!(g.virtual_count(), d + 1, "d={d}");
            assert_eq!(g.edge_count(), d * d, "d={d}");
            assert!(g.validate().is_ok());
        }
    }

    #[test]
    fn rotated_code_table4_vertex_totals() {
        // Table 4 lists |V| for the d-round graph: 24, 90, 224, 450, 792, 1274, 1920.
        let expected = [
            (3, 24),
            (5, 90),
            (7, 224),
            (9, 450),
            (11, 792),
            (13, 1274),
            (15, 1920),
        ];
        for (d, total) in expected {
            let per_round = (d * d - 1) / 2 + d + 1;
            assert_eq!(per_round * d, total, "d={d}");
            let g = PhenomenologicalCode::rotated(d, d, 0.001).decoding_graph();
            assert_eq!(g.vertex_count(), total, "d={d}");
        }
    }

    #[test]
    fn rotated_code_degrees_are_bounded() {
        let g = CodeCapacityRotatedCode::new(7, 0.01).decoding_graph();
        for v in 0..g.vertex_count() {
            let deg = g.incident_edges(v).len();
            if g.is_virtual(v) {
                assert!((1..=2).contains(&deg), "virtual degree {deg}");
            } else {
                assert!((2..=4).contains(&deg), "regular degree {deg}");
            }
        }
    }

    #[test]
    fn rotated_code_minimum_logical_weight_is_d() {
        for d in [3usize, 5, 7] {
            let g = CodeCapacityRotatedCode::new(d, 0.01).decoding_graph();
            // minimum distance from any left virtual (j = -1) to any right virtual
            let mut min_dist = Weight::MAX;
            for u in 0..g.vertex_count() {
                if !(g.is_virtual(u) && g.vertex(u).position.j == -1) {
                    continue;
                }
                for v in 0..g.vertex_count() {
                    if !(g.is_virtual(v) && g.vertex(v).position.j == d as i64 - 1) {
                        continue;
                    }
                    if let Some(dist) = distance_between(&g, u, v) {
                        min_dist = min_dist.min(dist);
                    }
                }
            }
            assert_eq!(min_dist, UNIFORM_WEIGHT * d as Weight, "d={d}");
        }
    }

    #[test]
    fn single_errors_produce_one_or_two_defects() {
        let g = CodeCapacityRotatedCode::new(5, 0.01).decoding_graph();
        for e in 0..g.edge_count() {
            let s = ErrorPattern::new(vec![e]).syndrome(&g);
            assert!(
                s.len() == 1 || s.len() == 2,
                "edge {e} gives {} defects",
                s.len()
            );
        }
    }

    #[test]
    fn phenomenological_stack_counts() {
        let d = 5;
        let rounds = 4;
        let code = PhenomenologicalCode::rotated(d, rounds, 0.01);
        let g = code.decoding_graph();
        let base = CodeCapacityRotatedCode::new(d, 0.01).decoding_graph();
        assert_eq!(g.vertex_count(), base.vertex_count() * rounds);
        assert_eq!(
            g.edge_count(),
            base.edge_count() * rounds + base.regular_count() * (rounds - 1)
        );
        assert_eq!(g.num_layers(), rounds);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn phenomenological_weights_reflect_probabilities() {
        let base = CodeCapacityRotatedCode::new(3, 0.01).decoding_graph();
        let code = PhenomenologicalCode::new(base, 3, 0.001);
        let g = code.decoding_graph();
        let weights: Vec<Weight> = g.edges().iter().map(|e| e.weight).collect();
        let space_w = weights[0];
        let time_w = *weights.last().unwrap();
        assert!(
            time_w > space_w,
            "rarer measurement errors should weigh more"
        );
    }

    #[test]
    fn observable_is_on_left_column_only() {
        let g = CodeCapacityRotatedCode::new(5, 0.01).decoding_graph();
        let masked = g.edges().iter().filter(|e| e.observable_mask != 0).count();
        assert_eq!(masked, 5); // one per row
    }

    // randomized property checks (deterministically seeded; these replace the
    // earlier proptest strategies, which are unavailable offline)

    #[test]
    fn defect_parity_matches_boundary_error_parity() {
        use rand::Rng;
        use rand::SeedableRng;
        for d in [3usize, 5, 7] {
            let g = CodeCapacityRotatedCode::new(d, 0.1).decoding_graph();
            for seed in 0u64..16 {
                let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
                let edges: Vec<usize> = (0..g.edge_count()).filter(|_| rng.gen_bool(0.3)).collect();
                let boundary_edges = edges
                    .iter()
                    .filter(|&&e| {
                        let (u, v) = g.edge(e).vertices;
                        g.is_virtual(u) || g.is_virtual(v)
                    })
                    .count();
                let syndrome = ErrorPattern::new(edges.clone()).syndrome(&g);
                assert_eq!(syndrome.len() % 2, boundary_edges % 2, "d={d} seed={seed}");
            }
        }
    }
}
