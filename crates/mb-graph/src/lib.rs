//! Decoding-graph substrate for the Micro Blossom reproduction.
//!
//! This crate provides everything the decoders need to know about the code
//! being decoded:
//!
//! * [`DecodingGraph`]: a weighted graph whose vertices are stabilizer
//!   measurements (possibly replicated over measurement rounds) and whose
//!   edges are independent error mechanisms, exactly as described in §2 of
//!   the Micro Blossom paper.
//! * Builders for the quantum repetition code and the rotated / planar
//!   surface codes under code-capacity and phenomenological noise
//!   ([`codes`]), plus circuit-level noise compiled from
//!   syndrome-extraction fault locations ([`circuit`]); the shared
//!   rotated-lattice geometry lives in [`lattice`].
//! * Shortest-path machinery used both by the decoders (correction paths)
//!   and by the exact reference matcher ([`dijkstra`]).
//! * Independent-edge error sampling producing syndromes and logical
//!   observable flips ([`syndrome`]), and mechanism-level circuit-noise
//!   sampling ([`circuit::CircuitErrorSampler`]).
//! * JSON export of decoding graphs mirroring the artifact interface of the
//!   paper (§A.5), see [`export`].
//!
//! # Layer and vertex-index convention
//!
//! Multi-round graphs are organized in *fusion layers*: the layer of a
//! vertex is its [`Position::t`] coordinate (clamped to `0..`), one layer
//! per measurement round, and [`DecodingGraph::num_layers`] is
//! `max(t) + 1`. Every builder in this crate creates vertices
//! **layer-major**: all of layer `0`'s vertices (real and virtual, in the
//! row-major lattice order of
//! [`lattice::RotatedLattice::add_layer_vertices`]) receive indices before
//! any vertex of layer `1`, and so on. Vertex indices are therefore
//! monotone in the layer, which is what lets
//! [`SyndromePattern::split_by_layer`] bucket a syndrome into per-round
//! defect lists — `result[t]` holds exactly the defects with
//! `layer_of(v) == t` — and lets the streaming front-end feed those
//! buckets to the accelerator one round at a time (§6 round-wise fusion).
//! Edges may connect vertices of the same layer (space-like), vertically
//! adjacent layers (time-like), or diagonally (circuit-level faults
//! straddling an extraction schedule); no builder produces edges spanning
//! more than one layer boundary.
//!
//! # Example
//!
//! ```
//! use mb_graph::codes::CodeCapacityRotatedCode;
//! use mb_graph::syndrome::ErrorSampler;
//! use rand::SeedableRng;
//!
//! let code = CodeCapacityRotatedCode::new(5, 0.05);
//! let graph = code.decoding_graph();
//! assert_eq!(graph.vertex_count() - graph.virtual_count(), 12); // (d^2-1)/2
//! let sampler = ErrorSampler::new(&graph);
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let shot = sampler.sample(&mut rng);
//! assert!(shot.syndrome.defects.len() % 2 == 0 || graph.virtual_count() > 0);
//! ```

pub mod circuit;
pub mod codes;
pub mod corpus;
pub mod dijkstra;
pub mod export;
pub mod graph;
pub mod json;
pub mod lattice;
pub mod syndrome;
pub mod types;
pub mod weights;
pub mod window;

pub use circuit::{
    CircuitErrorSampler, CircuitLevelCode, CircuitNoiseParams, CompiledCircuit, MechanismTilt,
    TiltedCircuitSampler,
};
pub use corpus::{
    graph_fingerprint, CorpusError, CorpusHeader, CorpusWriter, TraceCorpus, TraceRecord,
};
pub use graph::{DecodingGraph, DecodingGraphBuilder, EdgeInfo, VertexInfo};
pub use lattice::RotatedLattice;
pub use syndrome::{ErrorPattern, ErrorSampler, Shot, SyndromePattern};
pub use types::{EdgeIndex, NodeIndex, ObservableMask, Position, VertexIndex, Weight};
pub use weights::WeightScaler;
pub use window::{SeamSide, WindowView};
