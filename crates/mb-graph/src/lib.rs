//! Decoding-graph substrate for the Micro Blossom reproduction.
//!
//! This crate provides everything the decoders need to know about the code
//! being decoded:
//!
//! * [`DecodingGraph`]: a weighted graph whose vertices are stabilizer
//!   measurements (possibly replicated over measurement rounds) and whose
//!   edges are independent error mechanisms, exactly as described in §2 of
//!   the Micro Blossom paper.
//! * Builders for the quantum repetition code and the rotated / planar
//!   surface codes under code-capacity and phenomenological noise
//!   ([`codes`]).
//! * Shortest-path machinery used both by the decoders (correction paths)
//!   and by the exact reference matcher ([`dijkstra`]).
//! * Independent-edge error sampling producing syndromes and logical
//!   observable flips ([`syndrome`]).
//! * JSON export of decoding graphs mirroring the artifact interface of the
//!   paper (§A.5), see [`export`].
//!
//! # Example
//!
//! ```
//! use mb_graph::codes::CodeCapacityRotatedCode;
//! use mb_graph::syndrome::ErrorSampler;
//! use rand::SeedableRng;
//!
//! let code = CodeCapacityRotatedCode::new(5, 0.05);
//! let graph = code.decoding_graph();
//! assert_eq!(graph.vertex_count() - graph.virtual_count(), 12); // (d^2-1)/2
//! let sampler = ErrorSampler::new(&graph);
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let shot = sampler.sample(&mut rng);
//! assert!(shot.syndrome.defects.len() % 2 == 0 || graph.virtual_count() > 0);
//! ```

pub mod codes;
pub mod dijkstra;
pub mod export;
pub mod graph;
pub mod json;
pub mod syndrome;
pub mod types;
pub mod weights;

pub use graph::{DecodingGraph, DecodingGraphBuilder, EdgeInfo, VertexInfo};
pub use syndrome::{ErrorPattern, ErrorSampler, Shot, SyndromePattern};
pub use types::{EdgeIndex, NodeIndex, ObservableMask, Position, VertexIndex, Weight};
pub use weights::WeightScaler;
