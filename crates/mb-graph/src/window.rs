//! Windowed sub-graph views for parallel-window decoding.
//!
//! A [`WindowView`] carves the layer range `[lo, hi)` out of a multi-round
//! [`DecodingGraph`] and packages it as a self-contained decoding graph:
//! the in-window vertices keep their relative order (rebased to index `0`
//! and layer `0`), and every edge that crosses a window boundary is
//! redirected to a *seam virtual* vertex on the corresponding side. Seam
//! virtuals are the graph-level form of the paper's §6.3 fusion-boundary
//! treatment: a defect near an open seam may match into the not-yet-visible
//! (or already-committed) region at exactly the crossing edge's weight, as
//! if the region beyond the seam were boundary. The windowed decoder in
//! `mb-decoder` treats any matching that lands on a seam virtual as
//! *deferred* and re-decodes it in an overlap region around the seam.
//!
//! Views rely on the layer-major vertex ordering guaranteed by every
//! builder in this crate (see the [crate docs](crate)): vertex indices are
//! monotone in the layer, so the in-window vertices form one contiguous
//! index block and full↔sub index mapping is O(1). [`WindowView::build`]
//! asserts this invariant.

use crate::graph::{DecodingGraph, DecodingGraphBuilder};
use crate::types::{Position, VertexIndex};
use std::collections::HashMap;
use std::sync::Arc;

/// Which open boundary of a window a seam virtual vertex models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeamSide {
    /// The seam toward earlier rounds (layers `< lo`).
    Lower,
    /// The seam toward later rounds (layers `>= hi`).
    Upper,
}

/// A decoding-graph view of the fusion layers `[lo, hi)` of a larger graph.
///
/// The view's vertices are, in order: the original graph's vertices of
/// layers `[lo, hi)` (sub index `v - base()`), followed by one seam virtual
/// per distinct out-of-window neighbor (sub indices `>= in_window_count()`,
/// sides via [`Self::seam_side`]). Edges between two in-window vertices are
/// copied verbatim; edges from an in-window *regular* vertex to an
/// out-of-window vertex are redirected to that neighbor's seam virtual at
/// the original weight; edges from an in-window *virtual* vertex out of the
/// window are dropped (a virtual–virtual edge is meaningless — no defect
/// can sit on either end inside this window).
///
/// A view over the full layer range shares the original graph (same `Arc`,
/// no seam virtuals), so decoding it is bit-identical to the monolithic
/// path, backend caches included.
#[derive(Debug, Clone)]
pub struct WindowView {
    graph: Arc<DecodingGraph>,
    lo: usize,
    hi: usize,
    base: VertexIndex,
    in_count: usize,
    seam_sides: Vec<SeamSide>,
}

impl WindowView {
    /// Builds the view of layers `[lo, hi)` of `full`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`, `hi > full.num_layers()`, or the vertex
    /// indices of `full` are not monotone in the layer (every builder in
    /// this crate produces layer-major graphs; hand-built graphs must
    /// follow the same convention to be windowed).
    pub fn build(full: &Arc<DecodingGraph>, lo: usize, hi: usize) -> Self {
        assert!(lo < hi, "window [{lo}, {hi}) is empty");
        assert!(
            hi <= full.num_layers(),
            "window [{lo}, {hi}) exceeds the {} layers of the graph",
            full.num_layers()
        );
        if lo == 0 && hi == full.num_layers() {
            // full span: share the graph so decoding the view is the
            // monolithic path (same Arc => same backend-cache entry)
            return Self {
                graph: Arc::clone(full),
                lo,
                hi,
                base: 0,
                in_count: full.vertex_count(),
                seam_sides: Vec::new(),
            };
        }
        let (base, end) = in_window_block(full, lo, hi);
        let lo_t = lo as i64;
        let mut builder = DecodingGraphBuilder::new();
        for v in base..end {
            let info = full.vertex(v);
            let position = Position::new(info.position.t - lo_t, info.position.i, info.position.j);
            if info.is_virtual {
                builder.add_virtual_vertex(position);
            } else {
                builder.add_vertex(position);
            }
        }
        let in_count = end - base;
        let mut seam_of: HashMap<VertexIndex, VertexIndex> = HashMap::new();
        let mut seam_sides = Vec::new();
        for v in base..end {
            for &e in full.incident_edges(v) {
                let edge = full.edge(e);
                let other = edge.other(v);
                if (base..end).contains(&other) {
                    if v < other {
                        builder.add_edge(
                            v - base,
                            other - base,
                            edge.weight,
                            edge.error_probability,
                            edge.observable_mask,
                        );
                    }
                    continue;
                }
                if full.is_virtual(v) {
                    // would become a virtual–virtual edge; no in-window
                    // defect can use it, so it carries no information here
                    continue;
                }
                let seam = *seam_of.entry(other).or_insert_with(|| {
                    let info = full.vertex(other);
                    seam_sides.push(if full.layer_of(other) < lo {
                        SeamSide::Lower
                    } else {
                        SeamSide::Upper
                    });
                    builder.add_virtual_vertex(Position::new(
                        info.position.t - lo_t,
                        info.position.i,
                        info.position.j,
                    ))
                });
                builder.add_edge(
                    v - base,
                    seam,
                    edge.weight,
                    edge.error_probability,
                    edge.observable_mask,
                );
            }
        }
        Self {
            graph: Arc::new(builder.build()),
            lo,
            hi,
            base,
            in_count,
            seam_sides,
        }
    }

    /// The view as a decoding graph, ready for any backend.
    pub fn graph(&self) -> &Arc<DecodingGraph> {
        &self.graph
    }

    /// First (inclusive) full-graph layer of the window.
    pub fn layer_lo(&self) -> usize {
        self.lo
    }

    /// Last (exclusive) full-graph layer of the window.
    pub fn layer_hi(&self) -> usize {
        self.hi
    }

    /// Number of layers spanned (`layer_hi - layer_lo`). The view's own
    /// `num_layers` is one more than this when an upper seam exists (the
    /// upper seam virtuals form a final, defect-free layer).
    pub fn span(&self) -> usize {
        self.hi - self.lo
    }

    /// Full-graph index of the first in-window vertex.
    pub fn base(&self) -> VertexIndex {
        self.base
    }

    /// Number of in-window vertices (sub indices `0..in_window_count()`
    /// map back to the full graph).
    pub fn in_window_count(&self) -> usize {
        self.in_count
    }

    /// Number of seam virtual vertices appended after the in-window block.
    pub fn seam_count(&self) -> usize {
        self.seam_sides.len()
    }

    /// Whether the view covers the whole graph (no seams; shares the
    /// original `Arc`).
    pub fn is_full_span(&self) -> bool {
        self.seam_sides.is_empty() && self.base == 0 && self.in_count == self.graph.vertex_count()
    }

    /// Maps a full-graph vertex into the view; `None` when outside the
    /// window.
    pub fn sub_of_full(&self, v: VertexIndex) -> Option<VertexIndex> {
        (self.base..self.base + self.in_count)
            .contains(&v)
            .then(|| v - self.base)
    }

    /// Maps a view vertex back to the full graph; `None` for seam virtuals
    /// (they have no full-graph counterpart).
    pub fn full_of_sub(&self, sub: VertexIndex) -> Option<VertexIndex> {
        (sub < self.in_count).then(|| self.base + sub)
    }

    /// Which seam a view vertex belongs to; `None` for in-window vertices.
    pub fn seam_side(&self, sub: VertexIndex) -> Option<SeamSide> {
        self.seam_sides
            .get(sub.wrapping_sub(self.in_count))
            .copied()
    }

    /// Whether two views are interchangeable for decoding: same span, same
    /// in-window block size, same seam layout, and equal graphs. Interior
    /// windows of a time-translation-invariant code compare equal, which
    /// lets a window plan share one graph `Arc` (and so one cached backend)
    /// across all of them.
    pub fn structurally_equal(&self, other: &Self) -> bool {
        self.span() == other.span()
            && self.in_count == other.in_count
            && self.seam_sides == other.seam_sides
            && (Arc::ptr_eq(&self.graph, &other.graph) || *self.graph == *other.graph)
    }

    /// Replaces this view's graph with `canonical` when the two are equal,
    /// so structurally identical windows share one `Arc` (one backend-cache
    /// entry on the decode pool). Returns whether the adoption happened.
    pub fn canonicalize_graph(&mut self, canonical: &Arc<DecodingGraph>) -> bool {
        if Arc::ptr_eq(&self.graph, canonical) {
            return true;
        }
        if *self.graph == **canonical {
            self.graph = Arc::clone(canonical);
            return true;
        }
        false
    }
}

/// Locates the contiguous vertex block of layers `[lo, hi)`, asserting the
/// layer-major ordering invariant along the way.
fn in_window_block(full: &DecodingGraph, lo: usize, hi: usize) -> (VertexIndex, VertexIndex) {
    let mut base = None;
    let mut end = None;
    let mut prev = 0usize;
    for v in 0..full.vertex_count() {
        let layer = full.layer_of(v);
        assert!(
            layer >= prev,
            "vertex indices are not layer-major (vertex {v} of layer {layer} \
             follows layer {prev}); windowed views require the builder \
             convention documented in the mb-graph crate docs"
        );
        prev = layer;
        if base.is_none() && layer >= lo {
            base = Some(v);
        }
        if end.is_none() && layer >= hi {
            end = Some(v);
        }
    }
    let end = end.unwrap_or(full.vertex_count());
    let base = base.unwrap_or(end);
    assert!(
        base < end,
        "window [{lo}, {hi}) contains no vertices (graph has {} layers)",
        full.num_layers()
    );
    (base, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::PhenomenologicalCode;

    fn phenomenological(rounds: usize) -> Arc<DecodingGraph> {
        Arc::new(PhenomenologicalCode::rotated(3, rounds, 0.02).decoding_graph())
    }

    #[test]
    fn full_span_shares_the_graph_arc() {
        let graph = phenomenological(4);
        let view = WindowView::build(&graph, 0, graph.num_layers());
        assert!(view.is_full_span());
        assert!(Arc::ptr_eq(view.graph(), &graph));
        assert_eq!(view.seam_count(), 0);
        assert_eq!(view.in_window_count(), graph.vertex_count());
        assert_eq!(view.sub_of_full(7), Some(7));
        assert_eq!(view.full_of_sub(7), Some(7));
    }

    #[test]
    fn interior_window_has_both_seams_and_valid_graph() {
        let graph = phenomenological(8);
        let view = WindowView::build(&graph, 2, 6);
        assert!(!view.is_full_span());
        assert!(view.graph().validate().is_ok());
        assert_eq!(view.span(), 4);
        // upper seam virtuals form their own final layer
        assert_eq!(view.graph().num_layers(), view.span() + 1);
        let sides: Vec<SeamSide> = (view.in_window_count()..view.graph().vertex_count())
            .map(|s| view.seam_side(s).unwrap())
            .collect();
        assert!(sides.contains(&SeamSide::Lower));
        assert!(sides.contains(&SeamSide::Upper));
        // every in-window vertex round-trips through the index mapping
        let expected: usize = (2..6).map(|t| graph.vertices_in_layer(t).count()).sum();
        assert_eq!(view.in_window_count(), expected);
        for sub in 0..view.in_window_count() {
            let full = view.full_of_sub(sub).unwrap();
            assert_eq!(view.sub_of_full(full), Some(sub));
            assert_eq!(graph.layer_of(full), view.graph().layer_of(sub) + 2);
            assert_eq!(graph.is_virtual(full), view.graph().is_virtual(sub));
        }
    }

    #[test]
    fn first_and_last_windows_have_one_seam() {
        let graph = phenomenological(8);
        let first = WindowView::build(&graph, 0, 3);
        assert!(first
            .graph()
            .vertices()
            .iter()
            .enumerate()
            .all(|(s, _)| first.seam_side(s) != Some(SeamSide::Lower)));
        assert!(first.seam_count() > 0);
        let last = WindowView::build(&graph, 5, 8);
        assert!(last
            .graph()
            .vertices()
            .iter()
            .enumerate()
            .all(|(s, _)| last.seam_side(s) != Some(SeamSide::Upper)));
        assert!(last.seam_count() > 0);
        assert_eq!(last.graph().num_layers(), last.span());
    }

    #[test]
    fn in_window_edges_keep_their_weight_and_mask() {
        let graph = phenomenological(6);
        let view = WindowView::build(&graph, 1, 4);
        let sub = view.graph();
        let mut checked = 0;
        for edge in sub.edges() {
            let (u, v) = edge.vertices;
            let (Some(fu), Some(fv)) = (view.full_of_sub(u), view.full_of_sub(v)) else {
                continue; // seam edge: weight checked against crossing edges below
            };
            let full_edge = graph
                .find_edge(fu, fv)
                .expect("in-window edge exists in full graph");
            assert_eq!(edge.weight, graph.edge(full_edge).weight);
            assert_eq!(edge.observable_mask, graph.edge(full_edge).observable_mask);
            checked += 1;
        }
        assert!(checked > 0);
    }

    #[test]
    fn seam_edges_keep_the_crossing_edge_weight() {
        let graph = phenomenological(6);
        let view = WindowView::build(&graph, 1, 4);
        let sub = view.graph();
        let mut seam_edges = 0;
        for edge in sub.edges() {
            let (u, v) = edge.vertices;
            let (real, seam) = match (view.full_of_sub(u), view.full_of_sub(v)) {
                (Some(f), None) => (f, v),
                (None, Some(f)) => (f, u),
                _ => continue,
            };
            assert!(sub.is_virtual(seam));
            // the seam edge's weight matches some full-graph edge out of `real`
            assert!(
                graph
                    .incident_edges(real)
                    .iter()
                    .any(|&e| graph.edge(e).weight == edge.weight),
                "seam edge weight {} not among full-graph incident weights",
                edge.weight
            );
            seam_edges += 1;
        }
        assert!(seam_edges > 0);
    }

    #[test]
    fn interior_windows_of_an_invariant_code_are_structurally_equal() {
        let graph = phenomenological(12);
        let mut a = WindowView::build(&graph, 2, 6);
        let b = WindowView::build(&graph, 5, 9);
        assert!(a.structurally_equal(&b));
        assert!(a.canonicalize_graph(b.graph()));
        assert!(Arc::ptr_eq(a.graph(), b.graph()));
        // a boundary window differs (missing one seam)
        let first = WindowView::build(&graph, 0, 4);
        assert!(!first.structurally_equal(&b));
        assert!(!WindowView::build(&graph, 2, 6).canonicalize_graph(first.graph()));
    }

    #[test]
    #[should_panic(expected = "layer-major")]
    fn non_layer_major_graph_is_rejected() {
        let mut b = DecodingGraphBuilder::new();
        let v1 = b.add_vertex(Position::new(1, 0, 0));
        let v0 = b.add_vertex(Position::new(0, 0, 0));
        b.add_edge(v1, v0, 2, 0.01, 0);
        let graph = Arc::new(b.build());
        WindowView::build(&graph, 0, 1);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn out_of_range_window_is_rejected() {
        let graph = phenomenological(4);
        WindowView::build(&graph, 0, graph.num_layers() + 1);
    }
}
