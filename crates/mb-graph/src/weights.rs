//! Conversion from physical error probabilities to integer MWPM weights.
//!
//! The paper (§8.1) fixes the maximum edge weight to 14 so each ePU stores
//! only 4 bits; we follow the same convention but keep the maximum
//! configurable. Weights are forced to be even so dual variables remain
//! integral (two covers approaching each other close the gap at speed two).

use crate::types::Weight;

/// Maps error probabilities to even integer weights `w = log((1-p)/p)`,
/// scaled so the least likely error in the graph gets `max_weight`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightScaler {
    /// The smallest error probability that will be distinguished; anything
    /// rarer saturates at `max_weight`.
    pub min_probability: f64,
    /// Maximum (and saturation) weight, 14 in the paper's prototype.
    pub max_weight: Weight,
}

impl Default for WeightScaler {
    fn default() -> Self {
        Self {
            min_probability: 1e-3,
            max_weight: 14,
        }
    }
}

impl WeightScaler {
    /// Creates a scaler that maps `min_probability` to `max_weight`.
    ///
    /// # Panics
    ///
    /// Panics if `min_probability` is not in `(0, 0.5)` or `max_weight < 2`.
    pub fn new(min_probability: f64, max_weight: Weight) -> Self {
        assert!(
            min_probability > 0.0 && min_probability < 0.5,
            "min_probability must be in (0, 0.5)"
        );
        assert!(max_weight >= 2, "max_weight must be at least 2");
        Self {
            min_probability,
            max_weight,
        }
    }

    /// Log-likelihood ratio of an error probability.
    fn llr(p: f64) -> f64 {
        ((1.0 - p) / p).ln()
    }

    /// Converts an error probability to an even integer weight in
    /// `[2, max_weight]`.
    ///
    /// Probabilities at or above 0.5 map to the minimum weight 2 (the error
    /// is as likely as not, but a zero weight would merge vertices, which
    /// the decoders do not need to support).
    pub fn weight_of(&self, p: f64) -> Weight {
        if p >= 0.5 {
            return 2;
        }
        let scale = self.max_weight as f64 / Self::llr(self.min_probability);
        let w = (Self::llr(p) * scale).round() as Weight;
        let w = w.clamp(2, self.max_weight);
        if w % 2 == 0 {
            w
        } else {
            // round to the nearest even value, staying within bounds
            (w + 1).min(self.max_weight - (self.max_weight % 2)).max(2)
        }
    }

    /// A uniform-probability convenience: the weight used when every edge of
    /// a code-capacity graph shares the same probability.
    pub fn uniform_weight(&self) -> Weight {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_even_and_bounded() {
        let scaler = WeightScaler::new(1e-3, 14);
        for &p in &[0.4999, 0.3, 0.1, 0.03, 0.01, 0.003, 0.001, 1e-4, 1e-6] {
            let w = scaler.weight_of(p);
            assert!((2..=14).contains(&w), "p={p} w={w}");
            assert_eq!(w % 2, 0, "p={p} w={w}");
        }
    }

    #[test]
    fn rarer_errors_get_larger_weights() {
        let scaler = WeightScaler::new(1e-3, 14);
        assert!(scaler.weight_of(0.001) >= scaler.weight_of(0.003));
        assert!(scaler.weight_of(0.003) >= scaler.weight_of(0.01));
        assert!(scaler.weight_of(0.01) >= scaler.weight_of(0.1));
    }

    #[test]
    fn saturation_at_min_probability() {
        let scaler = WeightScaler::new(1e-3, 14);
        assert_eq!(scaler.weight_of(1e-3), 14);
        assert_eq!(scaler.weight_of(1e-9), 14);
    }

    #[test]
    fn paper_range_is_distinguished() {
        // §8.1: max weight 14 distinguishes p_e from 0.1% to 0.3%.
        let scaler = WeightScaler::new(1e-3, 14);
        assert!(scaler.weight_of(0.001) > scaler.weight_of(0.003));
    }

    #[test]
    #[should_panic(expected = "min_probability")]
    fn invalid_probability_panics() {
        WeightScaler::new(0.7, 14);
    }
}
