//! Shortest paths on decoding graphs.
//!
//! Distances between defect vertices define the syndrome-graph weights used
//! by the reference exact matcher, and shortest paths realize the physical
//! correction for each matched pair. Paths never pass *through* virtual
//! vertices (a correction chain may terminate on the boundary but not cross
//! it), matching the treatment of virtual vertices in Parity Blossom.

use crate::graph::DecodingGraph;
use crate::types::{EdgeIndex, VertexIndex, Weight};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of a single-source shortest-path computation.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    /// Source vertex.
    pub source: VertexIndex,
    /// `distance[v]` is `None` when `v` is unreachable without crossing a
    /// virtual vertex.
    pub distance: Vec<Option<Weight>>,
    /// Predecessor edge on a shortest path, for path reconstruction.
    pub predecessor: Vec<Option<EdgeIndex>>,
}

impl ShortestPaths {
    /// Distance from the source to `v`.
    pub fn distance_to(&self, v: VertexIndex) -> Option<Weight> {
        self.distance[v]
    }

    /// Reconstructs the edge list of a shortest path from the source to `v`.
    ///
    /// Returns `None` if `v` is unreachable.
    pub fn path_to(&self, v: VertexIndex, graph: &DecodingGraph) -> Option<Vec<EdgeIndex>> {
        self.distance[v]?;
        let mut path = Vec::new();
        let mut current = v;
        while current != self.source {
            let e = self.predecessor[current]?;
            path.push(e);
            current = graph.edge(e).other(current);
        }
        path.reverse();
        Some(path)
    }
}

/// Runs Dijkstra from `source`, never expanding out of virtual vertices.
///
/// Virtual vertices are still assigned distances (a path may end on the
/// boundary), they just cannot be intermediate hops.
pub fn dijkstra(graph: &DecodingGraph, source: VertexIndex) -> ShortestPaths {
    let n = graph.vertex_count();
    let mut distance: Vec<Option<Weight>> = vec![None; n];
    let mut predecessor: Vec<Option<EdgeIndex>> = vec![None; n];
    let mut heap: BinaryHeap<Reverse<(Weight, VertexIndex)>> = BinaryHeap::new();
    distance[source] = Some(0);
    heap.push(Reverse((0, source)));
    while let Some(Reverse((dist, v))) = heap.pop() {
        if distance[v] != Some(dist) {
            continue;
        }
        if graph.is_virtual(v) && v != source {
            continue; // boundary vertices terminate paths
        }
        for &e in graph.incident_edges(v) {
            let u = graph.edge(e).other(v);
            let next = dist + graph.edge(e).weight;
            if distance[u].is_none_or(|d| next < d) {
                distance[u] = Some(next);
                predecessor[u] = Some(e);
                heap.push(Reverse((next, u)));
            }
        }
    }
    ShortestPaths {
        source,
        distance,
        predecessor,
    }
}

/// Early-terminating point-to-point Dijkstra: settles vertices in the same
/// `(distance, vertex)` order (and with the same strict-improvement update
/// rule) as [`dijkstra`], so the distance and predecessor chain of `target`
/// are identical to the full run — but it stops the moment `target` is
/// settled and keeps its tentative state in a hash map, visiting only the
/// ball of radius `d(source, target)` around the source. This is the
/// hot-path variant behind correction extraction: for sparse syndromes the
/// matched pairs are close together, so the cost tracks the pair distance,
/// not the lattice size.
type SettledBall = std::collections::HashMap<VertexIndex, (Weight, Option<EdgeIndex>)>;

/// Runs the early-terminating search; see [`SettledBall`]. Returns the
/// target's distance together with the `(distance, predecessor)` entries of
/// the settled ball, or `None` when `target` is unreachable.
fn settle_target(
    graph: &DecodingGraph,
    source: VertexIndex,
    target: VertexIndex,
) -> Option<(Weight, SettledBall)> {
    let mut best: SettledBall = SettledBall::new();
    let mut heap: BinaryHeap<Reverse<(Weight, VertexIndex)>> = BinaryHeap::new();
    best.insert(source, (0, None));
    heap.push(Reverse((0, source)));
    while let Some(Reverse((dist, v))) = heap.pop() {
        if best[&v].0 != dist {
            continue;
        }
        if v == target {
            return Some((dist, best));
        }
        if graph.is_virtual(v) && v != source {
            continue; // boundary vertices terminate paths
        }
        for &e in graph.incident_edges(v) {
            let u = graph.edge(e).other(v);
            let next = dist + graph.edge(e).weight;
            let improves = match best.get(&u) {
                None => true,
                Some(&(d, _)) => next < d,
            };
            if improves {
                best.insert(u, (next, Some(e)));
                heap.push(Reverse((next, u)));
            }
        }
    }
    None
}

/// Shortest distance between two vertices, or `None` if unreachable.
pub fn distance_between(graph: &DecodingGraph, u: VertexIndex, v: VertexIndex) -> Option<Weight> {
    settle_target(graph, u, v).map(|(dist, _)| dist)
}

/// Shortest path (edge list) between two vertices. Identical to the path
/// [`dijkstra`] reconstructs, computed with the early-terminating search.
pub fn path_between(
    graph: &DecodingGraph,
    u: VertexIndex,
    v: VertexIndex,
) -> Option<Vec<EdgeIndex>> {
    let (_, best) = settle_target(graph, u, v)?;
    let mut path = Vec::new();
    let mut current = v;
    while current != u {
        let e = best[&current].1?;
        path.push(e);
        current = graph.edge(e).other(current);
    }
    path.reverse();
    Some(path)
}

/// Distance from `u` to its closest virtual vertex together with that vertex.
pub fn distance_to_boundary(
    graph: &DecodingGraph,
    u: VertexIndex,
) -> Option<(Weight, VertexIndex)> {
    let sp = dijkstra(graph, u);
    (0..graph.vertex_count())
        .filter(|&v| graph.is_virtual(v))
        .filter_map(|v| sp.distance_to(v).map(|d| (d, v)))
        .min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DecodingGraphBuilder;
    use crate::types::Position;

    /// line: virt(0) -2- v1 -4- v2 -2- virt(3), plus a shortcut v1 -10- virt(3)
    fn line_graph() -> DecodingGraph {
        let mut b = DecodingGraphBuilder::new();
        let b0 = b.add_virtual_vertex(Position::new(0, 0, -1));
        let v1 = b.add_vertex(Position::new(0, 0, 0));
        let v2 = b.add_vertex(Position::new(0, 0, 1));
        let b3 = b.add_virtual_vertex(Position::new(0, 0, 2));
        b.add_edge(b0, v1, 2, 0.01, 1);
        b.add_edge(v1, v2, 4, 0.001, 0);
        b.add_edge(v2, b3, 2, 0.01, 0);
        b.add_edge(v1, b3, 10, 0.0001, 0);
        b.build()
    }

    #[test]
    fn distances_are_correct() {
        let g = line_graph();
        assert_eq!(distance_between(&g, 1, 2), Some(4));
        assert_eq!(distance_between(&g, 1, 3), Some(6));
        assert_eq!(distance_between(&g, 1, 0), Some(2));
    }

    #[test]
    fn paths_do_not_cross_virtual_vertices() {
        let g = line_graph();
        // From v2 to virt(0): must go v2-v1-virt0 (weight 6), not through virt3.
        assert_eq!(distance_between(&g, 2, 0), Some(6));
        let path = path_between(&g, 2, 0).unwrap();
        assert_eq!(path, vec![1, 0]);
    }

    #[test]
    fn boundary_distance_picks_nearest_virtual() {
        let g = line_graph();
        let (d, v) = distance_to_boundary(&g, 1).unwrap();
        assert_eq!((d, v), (2, 0));
        let (d, v) = distance_to_boundary(&g, 2).unwrap();
        assert_eq!((d, v), (2, 3));
    }

    #[test]
    fn path_reconstruction_weight_matches_distance() {
        let g = line_graph();
        let sp = dijkstra(&g, 1);
        for v in 0..g.vertex_count() {
            if let Some(d) = sp.distance_to(v) {
                let path = sp.path_to(v, &g).unwrap();
                assert_eq!(g.total_weight(path), d);
            }
        }
    }

    #[test]
    fn unreachable_vertices_return_none() {
        let mut b = DecodingGraphBuilder::new();
        let v0 = b.add_vertex(Position::new(0, 0, 0));
        let _v1 = b.add_vertex(Position::new(0, 0, 1));
        let v2 = b.add_vertex(Position::new(0, 0, 2));
        b.add_edge(v0, v2, 2, 0.01, 0);
        let g = b.build();
        assert_eq!(distance_between(&g, 0, 1), None);
        assert_eq!(distance_between(&g, 0, 2), Some(2));
    }
}
