//! The rotated-surface-code lattice shared by every noise model.
//!
//! Three code builders need the same geometric facts about the rotated
//! surface code — which plaquette positions host a real Z-stabilizer
//! measurement, which are virtual boundary slots, which two plaquettes
//! detect an X error on a given data qubit, and (for circuit-level noise)
//! at which step of the syndrome-extraction schedule each plaquette's CNOT
//! touches each data qubit. [`RotatedLattice`] centralizes them so
//! [`CodeCapacityRotatedCode`](crate::codes::CodeCapacityRotatedCode),
//! [`PhenomenologicalCode`](crate::codes::PhenomenologicalCode) (through the
//! code-capacity base graph), and
//! [`CircuitLevelCode`](crate::circuit::CircuitLevelCode) agree on the
//! lattice instead of keeping three copies of it.

use crate::graph::DecodingGraphBuilder;
use crate::types::{ObservableMask, Position, VertexIndex};
use std::collections::HashMap;

/// Role of a plaquette position in the rotated surface code layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaquetteKind {
    /// Interior or top/bottom boundary stabilizer: a real measurement.
    Real,
    /// Left/right boundary position: a virtual vertex.
    Virtual,
    /// Not part of this error type's decoding graph.
    Absent,
}

/// The rotated surface code lattice for one error type (X errors detected
/// by Z plaquettes), distance `d`.
///
/// Plaquettes are addressed by integer coordinates `(i, j)`: the plaquette
/// centered at `(i + 0.5, j + 0.5)` between the data qubits at rows
/// `i..=i+1` and columns `j..=j+1`. Data qubits are addressed `(r, c)` with
/// `0 <= r, c < d`. Per measurement round the lattice has `(d²-1)/2` real
/// plaquettes and `d+1` virtual ones, the counting of Table 4 of the paper.
///
/// ```
/// use mb_graph::lattice::{PlaquetteKind, RotatedLattice};
///
/// let lattice = RotatedLattice::new(5);
/// assert_eq!(lattice.real_plaquette_count(), 12); // (d²-1)/2
/// assert_eq!(lattice.virtual_plaquette_count(), 6); // d+1
/// // every data qubit is watched by exactly two plaquettes
/// let watchers = lattice.plaquettes_of_data(2, 2);
/// assert_eq!(watchers.len(), 2);
/// assert_eq!(lattice.plaquette_kind(0, 0), PlaquetteKind::Real);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RotatedLattice {
    d: i64,
}

impl RotatedLattice {
    /// Creates the distance-`d` lattice.
    ///
    /// # Panics
    ///
    /// Panics if `d` is even or `d < 3`.
    pub fn new(d: usize) -> Self {
        assert!(d >= 3 && d % 2 == 1, "rotated lattice needs odd d >= 3");
        Self { d: d as i64 }
    }

    /// Code distance.
    pub fn d(&self) -> usize {
        self.d as usize
    }

    /// Classifies the plaquette whose center is at `(i + 0.5, j + 0.5)`.
    pub fn plaquette_kind(&self, i: i64, j: i64) -> PlaquetteKind {
        let d = self.d;
        if i < -1 || i > d - 1 || j < -1 || j > d - 1 || (i + j).rem_euclid(2) != 0 {
            return PlaquetteKind::Absent;
        }
        if j == -1 || j == d - 1 {
            return PlaquetteKind::Virtual;
        }
        if (0..=d - 2).contains(&i) || i == -1 || i == d - 1 {
            return PlaquetteKind::Real;
        }
        PlaquetteKind::Absent
    }

    /// All present plaquette positions in deterministic row-major order,
    /// with their kind.
    pub fn plaquettes(&self) -> impl Iterator<Item = (i64, i64, PlaquetteKind)> + '_ {
        let d = self.d;
        (-1..d).flat_map(move |i| {
            (-1..d).filter_map(move |j| match self.plaquette_kind(i, j) {
                PlaquetteKind::Absent => None,
                kind => Some((i, j, kind)),
            })
        })
    }

    /// Number of real (measured) plaquettes: `(d²-1)/2`.
    pub fn real_plaquette_count(&self) -> usize {
        (self.d() * self.d() - 1) / 2
    }

    /// Number of virtual boundary plaquettes: `d+1`.
    pub fn virtual_plaquette_count(&self) -> usize {
        self.d() + 1
    }

    /// All data-qubit coordinates, row-major.
    pub fn data_qubits(&self) -> impl Iterator<Item = (i64, i64)> + '_ {
        let d = self.d;
        (0..d).flat_map(move |r| (0..d).map(move |c| (r, c)))
    }

    /// The two plaquettes detecting an X error on data qubit `(r, c)`.
    ///
    /// Always exactly two entries (possibly virtual), in the fixed corner
    /// order SE-watcher, SW-watcher, NE-watcher, NW-watcher of the
    /// candidates that exist.
    pub fn plaquettes_of_data(&self, r: i64, c: i64) -> Vec<(i64, i64, PlaquetteKind)> {
        let pl: Vec<_> = [(r - 1, c - 1), (r - 1, c), (r, c - 1), (r, c)]
            .into_iter()
            .filter_map(|(i, j)| match self.plaquette_kind(i, j) {
                PlaquetteKind::Absent => None,
                kind => Some((i, j, kind)),
            })
            .collect();
        assert_eq!(
            pl.len(),
            2,
            "data qubit ({r},{c}) must have exactly two Z plaquettes"
        );
        pl
    }

    /// The syndrome-extraction schedule step (0..4) at which plaquette
    /// `(i, j)`'s CNOT touches data qubit `(r, c)`.
    ///
    /// Every plaquette walks its corners in the same NW, NE, SW, SE order,
    /// so neighbouring plaquettes interleave without colliding. Data qubit
    /// `(r, c)` is plaquette `(r, c)`'s NW corner (step 0), `(r, c-1)`'s NE
    /// corner (step 1), `(r-1, c)`'s SW corner (step 2), and `(r-1, c-1)`'s
    /// SE corner (step 3).
    ///
    /// # Panics
    ///
    /// Panics if `(r, c)` is not a corner of plaquette `(i, j)`.
    pub fn cnot_step(&self, (i, j): (i64, i64), (r, c): (i64, i64)) -> usize {
        match (r - i, c - j) {
            (0, 0) => 0, // NW
            (0, 1) => 1, // NE
            (1, 0) => 2, // SW
            (1, 1) => 3, // SE
            _ => panic!("data qubit ({r},{c}) is not a corner of plaquette ({i},{j})"),
        }
    }

    /// Logical observables flipped by an X error on data qubit `(r, c)`:
    /// the logical operator is the left column, so column-0 qubits carry
    /// observable bit 0.
    pub fn observable_mask_of_data(&self, _r: i64, c: i64) -> ObservableMask {
        u64::from(c == 0)
    }

    /// Adds one measurement round's worth of vertices (layer `t`) to a
    /// graph builder, returning the plaquette-coordinate → vertex-index
    /// map.
    ///
    /// The insertion order is the row-major [`Self::plaquettes`] order, so
    /// every code builder sharing this lattice produces identical vertex
    /// numbering within a layer.
    pub fn add_layer_vertices(
        &self,
        builder: &mut DecodingGraphBuilder,
        t: i64,
    ) -> HashMap<(i64, i64), VertexIndex> {
        let mut idx = HashMap::new();
        for (i, j, kind) in self.plaquettes() {
            let position = Position::new(t, i, j);
            let v = match kind {
                PlaquetteKind::Real => builder.add_vertex(position),
                PlaquetteKind::Virtual => builder.add_virtual_vertex(position),
                PlaquetteKind::Absent => unreachable!("plaquettes() filters absent positions"),
            };
            idx.insert((i, j), v);
        }
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plaquette_counts_match_table4() {
        for d in [3usize, 5, 7, 9, 11] {
            let lattice = RotatedLattice::new(d);
            let real = lattice
                .plaquettes()
                .filter(|&(_, _, k)| k == PlaquetteKind::Real)
                .count();
            let virt = lattice
                .plaquettes()
                .filter(|&(_, _, k)| k == PlaquetteKind::Virtual)
                .count();
            assert_eq!(real, lattice.real_plaquette_count(), "d={d}");
            assert_eq!(virt, lattice.virtual_plaquette_count(), "d={d}");
        }
    }

    #[test]
    fn every_data_qubit_has_two_plaquettes() {
        for d in [3usize, 5, 7, 9, 11] {
            let lattice = RotatedLattice::new(d);
            for (r, c) in lattice.data_qubits() {
                assert_eq!(
                    lattice.plaquettes_of_data(r, c).len(),
                    2,
                    "d={d} r={r} c={c}"
                );
            }
        }
    }

    #[test]
    fn cnot_steps_are_distinct_per_data_qubit() {
        // the two watchers of any data qubit must touch it at different
        // schedule steps, otherwise fault propagation would be ambiguous
        let lattice = RotatedLattice::new(7);
        for (r, c) in lattice.data_qubits() {
            let steps: Vec<usize> = lattice
                .plaquettes_of_data(r, c)
                .iter()
                .filter(|&&(_, _, k)| k == PlaquetteKind::Real)
                .map(|&(i, j, _)| lattice.cnot_step((i, j), (r, c)))
                .collect();
            if steps.len() == 2 {
                assert_ne!(steps[0], steps[1], "r={r} c={c}");
            }
        }
    }

    #[test]
    fn cnot_steps_are_distinct_per_plaquette() {
        // within one plaquette, the four corners are touched one at a time
        let lattice = RotatedLattice::new(5);
        for (i, j, kind) in lattice.plaquettes() {
            if kind != PlaquetteKind::Real {
                continue;
            }
            let mut steps: Vec<usize> = [(i, j), (i, j + 1), (i + 1, j), (i + 1, j + 1)]
                .into_iter()
                .filter(|&(r, c)| (0..lattice.d).contains(&r) && (0..lattice.d).contains(&c))
                .map(|q| lattice.cnot_step((i, j), q))
                .collect();
            steps.sort_unstable();
            steps.dedup();
            assert_eq!(
                steps.len(),
                [(i, j), (i, j + 1), (i + 1, j), (i + 1, j + 1)]
                    .into_iter()
                    .filter(|&(r, c)| (0..lattice.d).contains(&r) && (0..lattice.d).contains(&c))
                    .count(),
                "plaquette ({i},{j})"
            );
        }
    }

    #[test]
    fn observable_lives_on_the_left_column() {
        let lattice = RotatedLattice::new(5);
        for (r, c) in lattice.data_qubits() {
            assert_eq!(lattice.observable_mask_of_data(r, c), u64::from(c == 0));
        }
    }

    #[test]
    #[should_panic(expected = "odd d")]
    fn even_distance_panics() {
        RotatedLattice::new(4);
    }
}
