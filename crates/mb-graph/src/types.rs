//! Shared index and scalar types used throughout the workspace.

/// Index of a vertex (stabilizer measurement) in a [`crate::DecodingGraph`].
pub type VertexIndex = usize;

/// Index of an edge (error mechanism) in a [`crate::DecodingGraph`].
pub type EdgeIndex = usize;

/// Index of a blossom-algorithm node (defect vertex node or blossom).
///
/// Following Table 3 of the paper, single-vertex nodes share the index space
/// of their defect vertex (`[0, |V|)`) and blossoms are allocated above
/// `|V|`.
pub type NodeIndex = usize;

/// Edge weight. Weights are non-negative and, by convention of the builders
/// in this workspace, even, so that all dual variables stay integral even
/// when two covers grow toward each other at combined speed two.
pub type Weight = i64;

/// Bit mask of logical observables flipped by an error mechanism.
pub type ObservableMask = u64;

/// A position in (measurement round, row, column) coordinates.
///
/// The `t` coordinate doubles as the *layer id* used by round-wise fusion
/// (§6 of the paper): syndrome data is streamed into the accelerator one
/// `t`-layer at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Position {
    /// Measurement round (0 for purely spatial graphs).
    pub t: i64,
    /// Row within a round.
    pub i: i64,
    /// Column within a round.
    pub j: i64,
}

impl Position {
    /// Creates a new position.
    pub fn new(t: i64, i: i64, j: i64) -> Self {
        Self { t, i, j }
    }
}

impl std::fmt::Display for Position {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {}, {})", self.t, self.i, self.j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_display() {
        assert_eq!(Position::new(1, 2, 3).to_string(), "(1, 2, 3)");
    }

    #[test]
    fn position_ordering_is_lexicographic() {
        assert!(Position::new(0, 5, 5) < Position::new(1, 0, 0));
        assert!(Position::new(1, 0, 5) < Position::new(1, 1, 0));
    }

    #[test]
    fn position_default_is_origin() {
        assert_eq!(Position::default(), Position::new(0, 0, 0));
    }
}
