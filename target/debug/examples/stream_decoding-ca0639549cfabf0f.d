/root/repo/target/debug/examples/stream_decoding-ca0639549cfabf0f.d: examples/stream_decoding.rs

/root/repo/target/debug/examples/stream_decoding-ca0639549cfabf0f: examples/stream_decoding.rs

examples/stream_decoding.rs:
