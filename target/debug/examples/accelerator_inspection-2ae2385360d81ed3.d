/root/repo/target/debug/examples/accelerator_inspection-2ae2385360d81ed3.d: crates/micro-blossom/../../examples/accelerator_inspection.rs Cargo.toml

/root/repo/target/debug/examples/libaccelerator_inspection-2ae2385360d81ed3.rmeta: crates/micro-blossom/../../examples/accelerator_inspection.rs Cargo.toml

crates/micro-blossom/../../examples/accelerator_inspection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
