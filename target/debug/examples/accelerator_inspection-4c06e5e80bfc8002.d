/root/repo/target/debug/examples/accelerator_inspection-4c06e5e80bfc8002.d: examples/accelerator_inspection.rs

/root/repo/target/debug/examples/accelerator_inspection-4c06e5e80bfc8002: examples/accelerator_inspection.rs

examples/accelerator_inspection.rs:
