/root/repo/target/debug/examples/quickstart-a71ef998c0f68b5c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-a71ef998c0f68b5c: examples/quickstart.rs

examples/quickstart.rs:
