/root/repo/target/debug/examples/stream_decoding-5695cd8f78085872.d: crates/micro-blossom/../../examples/stream_decoding.rs Cargo.toml

/root/repo/target/debug/examples/libstream_decoding-5695cd8f78085872.rmeta: crates/micro-blossom/../../examples/stream_decoding.rs Cargo.toml

crates/micro-blossom/../../examples/stream_decoding.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
