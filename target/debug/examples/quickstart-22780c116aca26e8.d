/root/repo/target/debug/examples/quickstart-22780c116aca26e8.d: crates/micro-blossom/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-22780c116aca26e8.rmeta: crates/micro-blossom/../../examples/quickstart.rs Cargo.toml

crates/micro-blossom/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
