/root/repo/target/debug/examples/accelerator_inspection-a10cf5cce48dfef5.d: crates/micro-blossom/../../examples/accelerator_inspection.rs

/root/repo/target/debug/examples/accelerator_inspection-a10cf5cce48dfef5: crates/micro-blossom/../../examples/accelerator_inspection.rs

crates/micro-blossom/../../examples/accelerator_inspection.rs:
