/root/repo/target/debug/examples/logical_error_rate-3a36829210199a62.d: crates/micro-blossom/../../examples/logical_error_rate.rs Cargo.toml

/root/repo/target/debug/examples/liblogical_error_rate-3a36829210199a62.rmeta: crates/micro-blossom/../../examples/logical_error_rate.rs Cargo.toml

crates/micro-blossom/../../examples/logical_error_rate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
