/root/repo/target/debug/examples/logical_error_rate-13c1320505229a4d.d: crates/micro-blossom/../../examples/logical_error_rate.rs

/root/repo/target/debug/examples/logical_error_rate-13c1320505229a4d: crates/micro-blossom/../../examples/logical_error_rate.rs

crates/micro-blossom/../../examples/logical_error_rate.rs:
