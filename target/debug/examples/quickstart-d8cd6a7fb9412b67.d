/root/repo/target/debug/examples/quickstart-d8cd6a7fb9412b67.d: crates/micro-blossom/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d8cd6a7fb9412b67: crates/micro-blossom/../../examples/quickstart.rs

crates/micro-blossom/../../examples/quickstart.rs:
