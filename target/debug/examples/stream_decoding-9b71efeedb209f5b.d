/root/repo/target/debug/examples/stream_decoding-9b71efeedb209f5b.d: crates/micro-blossom/../../examples/stream_decoding.rs

/root/repo/target/debug/examples/stream_decoding-9b71efeedb209f5b: crates/micro-blossom/../../examples/stream_decoding.rs

crates/micro-blossom/../../examples/stream_decoding.rs:
