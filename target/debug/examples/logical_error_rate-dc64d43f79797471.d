/root/repo/target/debug/examples/logical_error_rate-dc64d43f79797471.d: examples/logical_error_rate.rs

/root/repo/target/debug/examples/logical_error_rate-dc64d43f79797471: examples/logical_error_rate.rs

examples/logical_error_rate.rs:
