/root/repo/target/debug/deps/rand_chacha-c5bfdf3b1ff06bb9.d: shims/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand_chacha-c5bfdf3b1ff06bb9.rmeta: shims/rand_chacha/src/lib.rs Cargo.toml

shims/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
