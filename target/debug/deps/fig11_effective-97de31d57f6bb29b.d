/root/repo/target/debug/deps/fig11_effective-97de31d57f6bb29b.d: crates/bench/src/bin/fig11_effective.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_effective-97de31d57f6bb29b.rmeta: crates/bench/src/bin/fig11_effective.rs Cargo.toml

crates/bench/src/bin/fig11_effective.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
