/root/repo/target/debug/deps/micro_blossom-84156f61ecaf7f4a.d: crates/micro-blossom/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_blossom-84156f61ecaf7f4a.rmeta: crates/micro-blossom/src/lib.rs Cargo.toml

crates/micro-blossom/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
