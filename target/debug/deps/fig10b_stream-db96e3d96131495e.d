/root/repo/target/debug/deps/fig10b_stream-db96e3d96131495e.d: crates/bench/src/bin/fig10b_stream.rs

/root/repo/target/debug/deps/fig10b_stream-db96e3d96131495e: crates/bench/src/bin/fig10b_stream.rs

crates/bench/src/bin/fig10b_stream.rs:
