/root/repo/target/debug/deps/fig10_ablation-5618d7589516528e.d: crates/bench/benches/fig10_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_ablation-5618d7589516528e.rmeta: crates/bench/benches/fig10_ablation.rs Cargo.toml

crates/bench/benches/fig10_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
