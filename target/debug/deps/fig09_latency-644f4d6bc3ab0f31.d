/root/repo/target/debug/deps/fig09_latency-644f4d6bc3ab0f31.d: crates/bench/src/bin/fig09_latency.rs

/root/repo/target/debug/deps/fig09_latency-644f4d6bc3ab0f31: crates/bench/src/bin/fig09_latency.rs

crates/bench/src/bin/fig09_latency.rs:
