/root/repo/target/debug/deps/micro_blossom-5daab67e99e18175.d: src/lib.rs

/root/repo/target/debug/deps/micro_blossom-5daab67e99e18175: src/lib.rs

src/lib.rs:
