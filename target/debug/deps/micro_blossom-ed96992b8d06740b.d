/root/repo/target/debug/deps/micro_blossom-ed96992b8d06740b.d: crates/micro-blossom/src/lib.rs

/root/repo/target/debug/deps/micro_blossom-ed96992b8d06740b: crates/micro-blossom/src/lib.rs

crates/micro-blossom/src/lib.rs:
