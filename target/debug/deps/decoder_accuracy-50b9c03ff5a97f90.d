/root/repo/target/debug/deps/decoder_accuracy-50b9c03ff5a97f90.d: tests/decoder_accuracy.rs

/root/repo/target/debug/deps/decoder_accuracy-50b9c03ff5a97f90: tests/decoder_accuracy.rs

tests/decoder_accuracy.rs:
