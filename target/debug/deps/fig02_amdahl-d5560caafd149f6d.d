/root/repo/target/debug/deps/fig02_amdahl-d5560caafd149f6d.d: crates/bench/src/bin/fig02_amdahl.rs

/root/repo/target/debug/deps/fig02_amdahl-d5560caafd149f6d: crates/bench/src/bin/fig02_amdahl.rs

crates/bench/src/bin/fig02_amdahl.rs:
