/root/repo/target/debug/deps/fig10a_ablation-d2f25041e1064f9f.d: crates/bench/src/bin/fig10a_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libfig10a_ablation-d2f25041e1064f9f.rmeta: crates/bench/src/bin/fig10a_ablation.rs Cargo.toml

crates/bench/src/bin/fig10a_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
