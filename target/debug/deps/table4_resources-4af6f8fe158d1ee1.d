/root/repo/target/debug/deps/table4_resources-4af6f8fe158d1ee1.d: crates/bench/src/bin/table4_resources.rs

/root/repo/target/debug/deps/table4_resources-4af6f8fe158d1ee1: crates/bench/src/bin/table4_resources.rs

crates/bench/src/bin/table4_resources.rs:
