/root/repo/target/debug/deps/mb_blossom-b67582325b78adb9.d: crates/mb-blossom/src/lib.rs crates/mb-blossom/src/dual_serial.rs crates/mb-blossom/src/exact.rs crates/mb-blossom/src/interface.rs crates/mb-blossom/src/matching.rs crates/mb-blossom/src/primal.rs crates/mb-blossom/src/solver.rs Cargo.toml

/root/repo/target/debug/deps/libmb_blossom-b67582325b78adb9.rmeta: crates/mb-blossom/src/lib.rs crates/mb-blossom/src/dual_serial.rs crates/mb-blossom/src/exact.rs crates/mb-blossom/src/interface.rs crates/mb-blossom/src/matching.rs crates/mb-blossom/src/primal.rs crates/mb-blossom/src/solver.rs Cargo.toml

crates/mb-blossom/src/lib.rs:
crates/mb-blossom/src/dual_serial.rs:
crates/mb-blossom/src/exact.rs:
crates/mb-blossom/src/interface.rs:
crates/mb-blossom/src/matching.rs:
crates/mb-blossom/src/primal.rs:
crates/mb-blossom/src/solver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
