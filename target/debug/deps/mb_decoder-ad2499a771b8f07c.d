/root/repo/target/debug/deps/mb_decoder-ad2499a771b8f07c.d: crates/mb-decoder/src/lib.rs crates/mb-decoder/src/backend.rs crates/mb-decoder/src/evaluation.rs crates/mb-decoder/src/micro.rs crates/mb-decoder/src/outcome.rs crates/mb-decoder/src/parity.rs crates/mb-decoder/src/pipeline.rs crates/mb-decoder/src/uf.rs Cargo.toml

/root/repo/target/debug/deps/libmb_decoder-ad2499a771b8f07c.rmeta: crates/mb-decoder/src/lib.rs crates/mb-decoder/src/backend.rs crates/mb-decoder/src/evaluation.rs crates/mb-decoder/src/micro.rs crates/mb-decoder/src/outcome.rs crates/mb-decoder/src/parity.rs crates/mb-decoder/src/pipeline.rs crates/mb-decoder/src/uf.rs Cargo.toml

crates/mb-decoder/src/lib.rs:
crates/mb-decoder/src/backend.rs:
crates/mb-decoder/src/evaluation.rs:
crates/mb-decoder/src/micro.rs:
crates/mb-decoder/src/outcome.rs:
crates/mb-decoder/src/parity.rs:
crates/mb-decoder/src/pipeline.rs:
crates/mb-decoder/src/uf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
