/root/repo/target/debug/deps/pipeline_equals_serial-c9c530e56c2caa1c.d: crates/micro-blossom/../../tests/pipeline_equals_serial.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_equals_serial-c9c530e56c2caa1c.rmeta: crates/micro-blossom/../../tests/pipeline_equals_serial.rs Cargo.toml

crates/micro-blossom/../../tests/pipeline_equals_serial.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
