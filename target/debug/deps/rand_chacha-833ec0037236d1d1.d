/root/repo/target/debug/deps/rand_chacha-833ec0037236d1d1.d: shims/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-833ec0037236d1d1.rlib: shims/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-833ec0037236d1d1.rmeta: shims/rand_chacha/src/lib.rs

shims/rand_chacha/src/lib.rs:
