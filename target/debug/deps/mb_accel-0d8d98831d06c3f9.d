/root/repo/target/debug/deps/mb_accel-0d8d98831d06c3f9.d: crates/mb-accel/src/lib.rs crates/mb-accel/src/accelerator.rs crates/mb-accel/src/driver.rs crates/mb-accel/src/instruction.rs crates/mb-accel/src/resource.rs crates/mb-accel/src/timing.rs

/root/repo/target/debug/deps/libmb_accel-0d8d98831d06c3f9.rlib: crates/mb-accel/src/lib.rs crates/mb-accel/src/accelerator.rs crates/mb-accel/src/driver.rs crates/mb-accel/src/instruction.rs crates/mb-accel/src/resource.rs crates/mb-accel/src/timing.rs

/root/repo/target/debug/deps/libmb_accel-0d8d98831d06c3f9.rmeta: crates/mb-accel/src/lib.rs crates/mb-accel/src/accelerator.rs crates/mb-accel/src/driver.rs crates/mb-accel/src/instruction.rs crates/mb-accel/src/resource.rs crates/mb-accel/src/timing.rs

crates/mb-accel/src/lib.rs:
crates/mb-accel/src/accelerator.rs:
crates/mb-accel/src/driver.rs:
crates/mb-accel/src/instruction.rs:
crates/mb-accel/src/resource.rs:
crates/mb-accel/src/timing.rs:
