/root/repo/target/debug/deps/mb_graph-57e71942d9070f8f.d: crates/mb-graph/src/lib.rs crates/mb-graph/src/codes.rs crates/mb-graph/src/dijkstra.rs crates/mb-graph/src/export.rs crates/mb-graph/src/graph.rs crates/mb-graph/src/json.rs crates/mb-graph/src/syndrome.rs crates/mb-graph/src/types.rs crates/mb-graph/src/weights.rs

/root/repo/target/debug/deps/libmb_graph-57e71942d9070f8f.rlib: crates/mb-graph/src/lib.rs crates/mb-graph/src/codes.rs crates/mb-graph/src/dijkstra.rs crates/mb-graph/src/export.rs crates/mb-graph/src/graph.rs crates/mb-graph/src/json.rs crates/mb-graph/src/syndrome.rs crates/mb-graph/src/types.rs crates/mb-graph/src/weights.rs

/root/repo/target/debug/deps/libmb_graph-57e71942d9070f8f.rmeta: crates/mb-graph/src/lib.rs crates/mb-graph/src/codes.rs crates/mb-graph/src/dijkstra.rs crates/mb-graph/src/export.rs crates/mb-graph/src/graph.rs crates/mb-graph/src/json.rs crates/mb-graph/src/syndrome.rs crates/mb-graph/src/types.rs crates/mb-graph/src/weights.rs

crates/mb-graph/src/lib.rs:
crates/mb-graph/src/codes.rs:
crates/mb-graph/src/dijkstra.rs:
crates/mb-graph/src/export.rs:
crates/mb-graph/src/graph.rs:
crates/mb-graph/src/json.rs:
crates/mb-graph/src/syndrome.rs:
crates/mb-graph/src/types.rs:
crates/mb-graph/src/weights.rs:
