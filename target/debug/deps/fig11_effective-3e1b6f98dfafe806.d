/root/repo/target/debug/deps/fig11_effective-3e1b6f98dfafe806.d: crates/bench/src/bin/fig11_effective.rs

/root/repo/target/debug/deps/fig11_effective-3e1b6f98dfafe806: crates/bench/src/bin/fig11_effective.rs

crates/bench/src/bin/fig11_effective.rs:
