/root/repo/target/debug/deps/pipeline_equals_serial-e127dd1f17e8f697.d: crates/micro-blossom/../../tests/pipeline_equals_serial.rs

/root/repo/target/debug/deps/pipeline_equals_serial-e127dd1f17e8f697: crates/micro-blossom/../../tests/pipeline_equals_serial.rs

crates/micro-blossom/../../tests/pipeline_equals_serial.rs:
