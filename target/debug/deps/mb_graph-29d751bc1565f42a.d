/root/repo/target/debug/deps/mb_graph-29d751bc1565f42a.d: crates/mb-graph/src/lib.rs crates/mb-graph/src/codes.rs crates/mb-graph/src/dijkstra.rs crates/mb-graph/src/export.rs crates/mb-graph/src/graph.rs crates/mb-graph/src/json.rs crates/mb-graph/src/syndrome.rs crates/mb-graph/src/types.rs crates/mb-graph/src/weights.rs Cargo.toml

/root/repo/target/debug/deps/libmb_graph-29d751bc1565f42a.rmeta: crates/mb-graph/src/lib.rs crates/mb-graph/src/codes.rs crates/mb-graph/src/dijkstra.rs crates/mb-graph/src/export.rs crates/mb-graph/src/graph.rs crates/mb-graph/src/json.rs crates/mb-graph/src/syndrome.rs crates/mb-graph/src/types.rs crates/mb-graph/src/weights.rs Cargo.toml

crates/mb-graph/src/lib.rs:
crates/mb-graph/src/codes.rs:
crates/mb-graph/src/dijkstra.rs:
crates/mb-graph/src/export.rs:
crates/mb-graph/src/graph.rs:
crates/mb-graph/src/json.rs:
crates/mb-graph/src/syndrome.rs:
crates/mb-graph/src/types.rs:
crates/mb-graph/src/weights.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
