/root/repo/target/debug/deps/bench-1aaffd3805b39d2e.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/bench-1aaffd3805b39d2e: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
