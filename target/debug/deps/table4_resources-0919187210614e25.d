/root/repo/target/debug/deps/table4_resources-0919187210614e25.d: crates/bench/src/bin/table4_resources.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_resources-0919187210614e25.rmeta: crates/bench/src/bin/table4_resources.rs Cargo.toml

crates/bench/src/bin/table4_resources.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
