/root/repo/target/debug/deps/micro_blossom-ea24f95a9d1329ab.d: crates/micro-blossom/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_blossom-ea24f95a9d1329ab.rmeta: crates/micro-blossom/src/lib.rs Cargo.toml

crates/micro-blossom/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
