/root/repo/target/debug/deps/fig11_effective-71b26a14f2236f00.d: crates/bench/src/bin/fig11_effective.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_effective-71b26a14f2236f00.rmeta: crates/bench/src/bin/fig11_effective.rs Cargo.toml

crates/bench/src/bin/fig11_effective.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
