/root/repo/target/debug/deps/fig02_amdahl-be9b1b204da50735.d: crates/bench/benches/fig02_amdahl.rs Cargo.toml

/root/repo/target/debug/deps/libfig02_amdahl-be9b1b204da50735.rmeta: crates/bench/benches/fig02_amdahl.rs Cargo.toml

crates/bench/benches/fig02_amdahl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
