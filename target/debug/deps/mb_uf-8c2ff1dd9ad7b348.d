/root/repo/target/debug/deps/mb_uf-8c2ff1dd9ad7b348.d: crates/mb-uf/src/lib.rs crates/mb-uf/src/peeling.rs crates/mb-uf/src/union_find.rs

/root/repo/target/debug/deps/mb_uf-8c2ff1dd9ad7b348: crates/mb-uf/src/lib.rs crates/mb-uf/src/peeling.rs crates/mb-uf/src/union_find.rs

crates/mb-uf/src/lib.rs:
crates/mb-uf/src/peeling.rs:
crates/mb-uf/src/union_find.rs:
