/root/repo/target/debug/deps/fig10a_ablation-c8a5bc92fae3a672.d: crates/bench/src/bin/fig10a_ablation.rs

/root/repo/target/debug/deps/fig10a_ablation-c8a5bc92fae3a672: crates/bench/src/bin/fig10a_ablation.rs

crates/bench/src/bin/fig10a_ablation.rs:
