/root/repo/target/debug/deps/bench-f17840562c0157a6.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/libbench-f17840562c0157a6.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/libbench-f17840562c0157a6.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
