/root/repo/target/debug/deps/mb_uf-0ff31e375a96e620.d: crates/mb-uf/src/lib.rs crates/mb-uf/src/peeling.rs crates/mb-uf/src/union_find.rs

/root/repo/target/debug/deps/libmb_uf-0ff31e375a96e620.rlib: crates/mb-uf/src/lib.rs crates/mb-uf/src/peeling.rs crates/mb-uf/src/union_find.rs

/root/repo/target/debug/deps/libmb_uf-0ff31e375a96e620.rmeta: crates/mb-uf/src/lib.rs crates/mb-uf/src/peeling.rs crates/mb-uf/src/union_find.rs

crates/mb-uf/src/lib.rs:
crates/mb-uf/src/peeling.rs:
crates/mb-uf/src/union_find.rs:
