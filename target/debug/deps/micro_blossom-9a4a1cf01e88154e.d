/root/repo/target/debug/deps/micro_blossom-9a4a1cf01e88154e.d: crates/micro-blossom/src/lib.rs

/root/repo/target/debug/deps/libmicro_blossom-9a4a1cf01e88154e.rlib: crates/micro-blossom/src/lib.rs

/root/repo/target/debug/deps/libmicro_blossom-9a4a1cf01e88154e.rmeta: crates/micro-blossom/src/lib.rs

crates/micro-blossom/src/lib.rs:
