/root/repo/target/debug/deps/fig02_amdahl-b9e6e6feeb9024fd.d: crates/bench/src/bin/fig02_amdahl.rs

/root/repo/target/debug/deps/fig02_amdahl-b9e6e6feeb9024fd: crates/bench/src/bin/fig02_amdahl.rs

crates/bench/src/bin/fig02_amdahl.rs:
