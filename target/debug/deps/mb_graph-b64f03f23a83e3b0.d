/root/repo/target/debug/deps/mb_graph-b64f03f23a83e3b0.d: crates/mb-graph/src/lib.rs crates/mb-graph/src/codes.rs crates/mb-graph/src/dijkstra.rs crates/mb-graph/src/export.rs crates/mb-graph/src/graph.rs crates/mb-graph/src/json.rs crates/mb-graph/src/syndrome.rs crates/mb-graph/src/types.rs crates/mb-graph/src/weights.rs

/root/repo/target/debug/deps/mb_graph-b64f03f23a83e3b0: crates/mb-graph/src/lib.rs crates/mb-graph/src/codes.rs crates/mb-graph/src/dijkstra.rs crates/mb-graph/src/export.rs crates/mb-graph/src/graph.rs crates/mb-graph/src/json.rs crates/mb-graph/src/syndrome.rs crates/mb-graph/src/types.rs crates/mb-graph/src/weights.rs

crates/mb-graph/src/lib.rs:
crates/mb-graph/src/codes.rs:
crates/mb-graph/src/dijkstra.rs:
crates/mb-graph/src/export.rs:
crates/mb-graph/src/graph.rs:
crates/mb-graph/src/json.rs:
crates/mb-graph/src/syndrome.rs:
crates/mb-graph/src/types.rs:
crates/mb-graph/src/weights.rs:
