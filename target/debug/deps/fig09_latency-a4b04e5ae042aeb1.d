/root/repo/target/debug/deps/fig09_latency-a4b04e5ae042aeb1.d: crates/bench/benches/fig09_latency.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_latency-a4b04e5ae042aeb1.rmeta: crates/bench/benches/fig09_latency.rs Cargo.toml

crates/bench/benches/fig09_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
