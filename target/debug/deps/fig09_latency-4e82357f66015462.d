/root/repo/target/debug/deps/fig09_latency-4e82357f66015462.d: crates/bench/src/bin/fig09_latency.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_latency-4e82357f66015462.rmeta: crates/bench/src/bin/fig09_latency.rs Cargo.toml

crates/bench/src/bin/fig09_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
