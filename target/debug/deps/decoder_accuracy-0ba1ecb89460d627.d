/root/repo/target/debug/deps/decoder_accuracy-0ba1ecb89460d627.d: crates/micro-blossom/../../tests/decoder_accuracy.rs

/root/repo/target/debug/deps/decoder_accuracy-0ba1ecb89460d627: crates/micro-blossom/../../tests/decoder_accuracy.rs

crates/micro-blossom/../../tests/decoder_accuracy.rs:
