/root/repo/target/debug/deps/table4_resources-c837e2d339dcbbd1.d: crates/bench/benches/table4_resources.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_resources-c837e2d339dcbbd1.rmeta: crates/bench/benches/table4_resources.rs Cargo.toml

crates/bench/benches/table4_resources.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
