/root/repo/target/debug/deps/mb_accel-7837166b795217c6.d: crates/mb-accel/src/lib.rs crates/mb-accel/src/accelerator.rs crates/mb-accel/src/driver.rs crates/mb-accel/src/instruction.rs crates/mb-accel/src/resource.rs crates/mb-accel/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libmb_accel-7837166b795217c6.rmeta: crates/mb-accel/src/lib.rs crates/mb-accel/src/accelerator.rs crates/mb-accel/src/driver.rs crates/mb-accel/src/instruction.rs crates/mb-accel/src/resource.rs crates/mb-accel/src/timing.rs Cargo.toml

crates/mb-accel/src/lib.rs:
crates/mb-accel/src/accelerator.rs:
crates/mb-accel/src/driver.rs:
crates/mb-accel/src/instruction.rs:
crates/mb-accel/src/resource.rs:
crates/mb-accel/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
