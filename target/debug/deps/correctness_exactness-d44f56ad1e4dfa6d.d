/root/repo/target/debug/deps/correctness_exactness-d44f56ad1e4dfa6d.d: crates/micro-blossom/../../tests/correctness_exactness.rs

/root/repo/target/debug/deps/correctness_exactness-d44f56ad1e4dfa6d: crates/micro-blossom/../../tests/correctness_exactness.rs

crates/micro-blossom/../../tests/correctness_exactness.rs:
