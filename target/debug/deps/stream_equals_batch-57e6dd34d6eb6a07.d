/root/repo/target/debug/deps/stream_equals_batch-57e6dd34d6eb6a07.d: tests/stream_equals_batch.rs

/root/repo/target/debug/deps/stream_equals_batch-57e6dd34d6eb6a07: tests/stream_equals_batch.rs

tests/stream_equals_batch.rs:
