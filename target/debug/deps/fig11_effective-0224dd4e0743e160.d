/root/repo/target/debug/deps/fig11_effective-0224dd4e0743e160.d: crates/bench/benches/fig11_effective.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_effective-0224dd4e0743e160.rmeta: crates/bench/benches/fig11_effective.rs Cargo.toml

crates/bench/benches/fig11_effective.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
