/root/repo/target/debug/deps/fig02_amdahl-0f26a511da0774f7.d: crates/bench/src/bin/fig02_amdahl.rs Cargo.toml

/root/repo/target/debug/deps/libfig02_amdahl-0f26a511da0774f7.rmeta: crates/bench/src/bin/fig02_amdahl.rs Cargo.toml

crates/bench/src/bin/fig02_amdahl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
