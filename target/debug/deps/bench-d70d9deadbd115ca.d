/root/repo/target/debug/deps/bench-d70d9deadbd115ca.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libbench-d70d9deadbd115ca.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
