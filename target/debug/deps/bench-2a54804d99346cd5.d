/root/repo/target/debug/deps/bench-2a54804d99346cd5.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libbench-2a54804d99346cd5.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
