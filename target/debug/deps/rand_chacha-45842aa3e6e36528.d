/root/repo/target/debug/deps/rand_chacha-45842aa3e6e36528.d: shims/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/rand_chacha-45842aa3e6e36528: shims/rand_chacha/src/lib.rs

shims/rand_chacha/src/lib.rs:
