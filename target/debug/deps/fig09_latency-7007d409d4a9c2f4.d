/root/repo/target/debug/deps/fig09_latency-7007d409d4a9c2f4.d: crates/bench/src/bin/fig09_latency.rs

/root/repo/target/debug/deps/fig09_latency-7007d409d4a9c2f4: crates/bench/src/bin/fig09_latency.rs

crates/bench/src/bin/fig09_latency.rs:
