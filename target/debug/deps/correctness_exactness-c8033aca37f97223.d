/root/repo/target/debug/deps/correctness_exactness-c8033aca37f97223.d: tests/correctness_exactness.rs

/root/repo/target/debug/deps/correctness_exactness-c8033aca37f97223: tests/correctness_exactness.rs

tests/correctness_exactness.rs:
