/root/repo/target/debug/deps/mb_uf-a350f31399444a55.d: crates/mb-uf/src/lib.rs crates/mb-uf/src/peeling.rs crates/mb-uf/src/union_find.rs Cargo.toml

/root/repo/target/debug/deps/libmb_uf-a350f31399444a55.rmeta: crates/mb-uf/src/lib.rs crates/mb-uf/src/peeling.rs crates/mb-uf/src/union_find.rs Cargo.toml

crates/mb-uf/src/lib.rs:
crates/mb-uf/src/peeling.rs:
crates/mb-uf/src/union_find.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
