/root/repo/target/debug/deps/micro_blossom-552e4f35a74a08b9.d: src/lib.rs

/root/repo/target/debug/deps/libmicro_blossom-552e4f35a74a08b9.rlib: src/lib.rs

/root/repo/target/debug/deps/libmicro_blossom-552e4f35a74a08b9.rmeta: src/lib.rs

src/lib.rs:
