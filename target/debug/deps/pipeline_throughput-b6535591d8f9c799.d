/root/repo/target/debug/deps/pipeline_throughput-b6535591d8f9c799.d: crates/bench/src/bin/pipeline_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_throughput-b6535591d8f9c799.rmeta: crates/bench/src/bin/pipeline_throughput.rs Cargo.toml

crates/bench/src/bin/pipeline_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
