/root/repo/target/debug/deps/table4_resources-2637b6e53e6ec81b.d: crates/bench/src/bin/table4_resources.rs

/root/repo/target/debug/deps/table4_resources-2637b6e53e6ec81b: crates/bench/src/bin/table4_resources.rs

crates/bench/src/bin/table4_resources.rs:
