/root/repo/target/debug/deps/pipeline_throughput-9fd04c3d82a360a9.d: crates/bench/src/bin/pipeline_throughput.rs

/root/repo/target/debug/deps/pipeline_throughput-9fd04c3d82a360a9: crates/bench/src/bin/pipeline_throughput.rs

crates/bench/src/bin/pipeline_throughput.rs:
