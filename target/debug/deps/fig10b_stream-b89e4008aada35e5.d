/root/repo/target/debug/deps/fig10b_stream-b89e4008aada35e5.d: crates/bench/src/bin/fig10b_stream.rs Cargo.toml

/root/repo/target/debug/deps/libfig10b_stream-b89e4008aada35e5.rmeta: crates/bench/src/bin/fig10b_stream.rs Cargo.toml

crates/bench/src/bin/fig10b_stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
