/root/repo/target/debug/deps/stream_equals_batch-4c01f12c1e4e6427.d: crates/micro-blossom/../../tests/stream_equals_batch.rs Cargo.toml

/root/repo/target/debug/deps/libstream_equals_batch-4c01f12c1e4e6427.rmeta: crates/micro-blossom/../../tests/stream_equals_batch.rs Cargo.toml

crates/micro-blossom/../../tests/stream_equals_batch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
