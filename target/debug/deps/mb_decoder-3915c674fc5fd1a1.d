/root/repo/target/debug/deps/mb_decoder-3915c674fc5fd1a1.d: crates/mb-decoder/src/lib.rs crates/mb-decoder/src/backend.rs crates/mb-decoder/src/evaluation.rs crates/mb-decoder/src/micro.rs crates/mb-decoder/src/outcome.rs crates/mb-decoder/src/parity.rs crates/mb-decoder/src/pipeline.rs crates/mb-decoder/src/uf.rs

/root/repo/target/debug/deps/libmb_decoder-3915c674fc5fd1a1.rlib: crates/mb-decoder/src/lib.rs crates/mb-decoder/src/backend.rs crates/mb-decoder/src/evaluation.rs crates/mb-decoder/src/micro.rs crates/mb-decoder/src/outcome.rs crates/mb-decoder/src/parity.rs crates/mb-decoder/src/pipeline.rs crates/mb-decoder/src/uf.rs

/root/repo/target/debug/deps/libmb_decoder-3915c674fc5fd1a1.rmeta: crates/mb-decoder/src/lib.rs crates/mb-decoder/src/backend.rs crates/mb-decoder/src/evaluation.rs crates/mb-decoder/src/micro.rs crates/mb-decoder/src/outcome.rs crates/mb-decoder/src/parity.rs crates/mb-decoder/src/pipeline.rs crates/mb-decoder/src/uf.rs

crates/mb-decoder/src/lib.rs:
crates/mb-decoder/src/backend.rs:
crates/mb-decoder/src/evaluation.rs:
crates/mb-decoder/src/micro.rs:
crates/mb-decoder/src/outcome.rs:
crates/mb-decoder/src/parity.rs:
crates/mb-decoder/src/pipeline.rs:
crates/mb-decoder/src/uf.rs:
