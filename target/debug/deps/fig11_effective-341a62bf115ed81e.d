/root/repo/target/debug/deps/fig11_effective-341a62bf115ed81e.d: crates/bench/src/bin/fig11_effective.rs

/root/repo/target/debug/deps/fig11_effective-341a62bf115ed81e: crates/bench/src/bin/fig11_effective.rs

crates/bench/src/bin/fig11_effective.rs:
