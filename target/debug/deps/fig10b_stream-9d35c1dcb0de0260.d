/root/repo/target/debug/deps/fig10b_stream-9d35c1dcb0de0260.d: crates/bench/src/bin/fig10b_stream.rs

/root/repo/target/debug/deps/fig10b_stream-9d35c1dcb0de0260: crates/bench/src/bin/fig10b_stream.rs

crates/bench/src/bin/fig10b_stream.rs:
