/root/repo/target/debug/deps/decoder_accuracy-27540874a841c901.d: crates/micro-blossom/../../tests/decoder_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libdecoder_accuracy-27540874a841c901.rmeta: crates/micro-blossom/../../tests/decoder_accuracy.rs Cargo.toml

crates/micro-blossom/../../tests/decoder_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
