/root/repo/target/debug/deps/fig10a_ablation-d4c6a4d4e1dfc5ce.d: crates/bench/src/bin/fig10a_ablation.rs

/root/repo/target/debug/deps/fig10a_ablation-d4c6a4d4e1dfc5ce: crates/bench/src/bin/fig10a_ablation.rs

crates/bench/src/bin/fig10a_ablation.rs:
