/root/repo/target/debug/deps/fig09_latency-a3d6c11d16a56ef8.d: crates/bench/src/bin/fig09_latency.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_latency-a3d6c11d16a56ef8.rmeta: crates/bench/src/bin/fig09_latency.rs Cargo.toml

crates/bench/src/bin/fig09_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
