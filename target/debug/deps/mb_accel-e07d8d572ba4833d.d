/root/repo/target/debug/deps/mb_accel-e07d8d572ba4833d.d: crates/mb-accel/src/lib.rs crates/mb-accel/src/accelerator.rs crates/mb-accel/src/driver.rs crates/mb-accel/src/instruction.rs crates/mb-accel/src/resource.rs crates/mb-accel/src/timing.rs

/root/repo/target/debug/deps/mb_accel-e07d8d572ba4833d: crates/mb-accel/src/lib.rs crates/mb-accel/src/accelerator.rs crates/mb-accel/src/driver.rs crates/mb-accel/src/instruction.rs crates/mb-accel/src/resource.rs crates/mb-accel/src/timing.rs

crates/mb-accel/src/lib.rs:
crates/mb-accel/src/accelerator.rs:
crates/mb-accel/src/driver.rs:
crates/mb-accel/src/instruction.rs:
crates/mb-accel/src/resource.rs:
crates/mb-accel/src/timing.rs:
