/root/repo/target/debug/deps/mb_blossom-bb2dd13e32b63e3e.d: crates/mb-blossom/src/lib.rs crates/mb-blossom/src/dual_serial.rs crates/mb-blossom/src/exact.rs crates/mb-blossom/src/interface.rs crates/mb-blossom/src/matching.rs crates/mb-blossom/src/primal.rs crates/mb-blossom/src/solver.rs

/root/repo/target/debug/deps/libmb_blossom-bb2dd13e32b63e3e.rlib: crates/mb-blossom/src/lib.rs crates/mb-blossom/src/dual_serial.rs crates/mb-blossom/src/exact.rs crates/mb-blossom/src/interface.rs crates/mb-blossom/src/matching.rs crates/mb-blossom/src/primal.rs crates/mb-blossom/src/solver.rs

/root/repo/target/debug/deps/libmb_blossom-bb2dd13e32b63e3e.rmeta: crates/mb-blossom/src/lib.rs crates/mb-blossom/src/dual_serial.rs crates/mb-blossom/src/exact.rs crates/mb-blossom/src/interface.rs crates/mb-blossom/src/matching.rs crates/mb-blossom/src/primal.rs crates/mb-blossom/src/solver.rs

crates/mb-blossom/src/lib.rs:
crates/mb-blossom/src/dual_serial.rs:
crates/mb-blossom/src/exact.rs:
crates/mb-blossom/src/interface.rs:
crates/mb-blossom/src/matching.rs:
crates/mb-blossom/src/primal.rs:
crates/mb-blossom/src/solver.rs:
