/root/repo/target/debug/deps/pipeline_throughput-2db7bffc3599adc9.d: crates/bench/src/bin/pipeline_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_throughput-2db7bffc3599adc9.rmeta: crates/bench/src/bin/pipeline_throughput.rs Cargo.toml

crates/bench/src/bin/pipeline_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
