/root/repo/target/debug/deps/stream_equals_batch-a02a37f6f858b9cd.d: crates/micro-blossom/../../tests/stream_equals_batch.rs

/root/repo/target/debug/deps/stream_equals_batch-a02a37f6f858b9cd: crates/micro-blossom/../../tests/stream_equals_batch.rs

crates/micro-blossom/../../tests/stream_equals_batch.rs:
