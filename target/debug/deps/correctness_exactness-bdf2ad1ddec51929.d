/root/repo/target/debug/deps/correctness_exactness-bdf2ad1ddec51929.d: crates/micro-blossom/../../tests/correctness_exactness.rs Cargo.toml

/root/repo/target/debug/deps/libcorrectness_exactness-bdf2ad1ddec51929.rmeta: crates/micro-blossom/../../tests/correctness_exactness.rs Cargo.toml

crates/micro-blossom/../../tests/correctness_exactness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
