/root/repo/target/debug/deps/pipeline_equals_serial-dccc36d6bf1b60ab.d: tests/pipeline_equals_serial.rs

/root/repo/target/debug/deps/pipeline_equals_serial-dccc36d6bf1b60ab: tests/pipeline_equals_serial.rs

tests/pipeline_equals_serial.rs:
