/root/repo/target/release/librand_chacha.rlib: /root/repo/shims/rand/src/lib.rs /root/repo/shims/rand_chacha/src/lib.rs
