/root/repo/target/release/examples/logical_error_rate-3d91122fa685b7f1.d: crates/micro-blossom/../../examples/logical_error_rate.rs

/root/repo/target/release/examples/logical_error_rate-3d91122fa685b7f1: crates/micro-blossom/../../examples/logical_error_rate.rs

crates/micro-blossom/../../examples/logical_error_rate.rs:
