/root/repo/target/release/examples/logical_error_rate-2ace62af1769fbd0.d: crates/micro-blossom/../../examples/logical_error_rate.rs Cargo.toml

/root/repo/target/release/examples/liblogical_error_rate-2ace62af1769fbd0.rmeta: crates/micro-blossom/../../examples/logical_error_rate.rs Cargo.toml

crates/micro-blossom/../../examples/logical_error_rate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
