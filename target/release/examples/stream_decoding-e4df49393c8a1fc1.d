/root/repo/target/release/examples/stream_decoding-e4df49393c8a1fc1.d: crates/micro-blossom/../../examples/stream_decoding.rs Cargo.toml

/root/repo/target/release/examples/libstream_decoding-e4df49393c8a1fc1.rmeta: crates/micro-blossom/../../examples/stream_decoding.rs Cargo.toml

crates/micro-blossom/../../examples/stream_decoding.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
