/root/repo/target/release/examples/quickstart-a32e249e2faffc6f.d: crates/micro-blossom/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-a32e249e2faffc6f: crates/micro-blossom/../../examples/quickstart.rs

crates/micro-blossom/../../examples/quickstart.rs:
