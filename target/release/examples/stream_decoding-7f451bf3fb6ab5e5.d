/root/repo/target/release/examples/stream_decoding-7f451bf3fb6ab5e5.d: crates/micro-blossom/../../examples/stream_decoding.rs

/root/repo/target/release/examples/stream_decoding-7f451bf3fb6ab5e5: crates/micro-blossom/../../examples/stream_decoding.rs

crates/micro-blossom/../../examples/stream_decoding.rs:
