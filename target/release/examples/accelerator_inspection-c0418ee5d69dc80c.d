/root/repo/target/release/examples/accelerator_inspection-c0418ee5d69dc80c.d: crates/micro-blossom/../../examples/accelerator_inspection.rs Cargo.toml

/root/repo/target/release/examples/libaccelerator_inspection-c0418ee5d69dc80c.rmeta: crates/micro-blossom/../../examples/accelerator_inspection.rs Cargo.toml

crates/micro-blossom/../../examples/accelerator_inspection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
