/root/repo/target/release/examples/quickstart-d2e2fd068a3c1a3b.d: crates/micro-blossom/../../examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-d2e2fd068a3c1a3b.rmeta: crates/micro-blossom/../../examples/quickstart.rs Cargo.toml

crates/micro-blossom/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
