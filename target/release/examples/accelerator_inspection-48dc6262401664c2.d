/root/repo/target/release/examples/accelerator_inspection-48dc6262401664c2.d: crates/micro-blossom/../../examples/accelerator_inspection.rs

/root/repo/target/release/examples/accelerator_inspection-48dc6262401664c2: crates/micro-blossom/../../examples/accelerator_inspection.rs

crates/micro-blossom/../../examples/accelerator_inspection.rs:
