/root/repo/target/release/deps/pipeline_equals_serial-2273bc5c0cec9d56.d: crates/micro-blossom/../../tests/pipeline_equals_serial.rs Cargo.toml

/root/repo/target/release/deps/libpipeline_equals_serial-2273bc5c0cec9d56.rmeta: crates/micro-blossom/../../tests/pipeline_equals_serial.rs Cargo.toml

crates/micro-blossom/../../tests/pipeline_equals_serial.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
