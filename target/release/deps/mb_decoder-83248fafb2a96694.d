/root/repo/target/release/deps/mb_decoder-83248fafb2a96694.d: crates/mb-decoder/src/lib.rs crates/mb-decoder/src/backend.rs crates/mb-decoder/src/evaluation.rs crates/mb-decoder/src/micro.rs crates/mb-decoder/src/outcome.rs crates/mb-decoder/src/parity.rs crates/mb-decoder/src/pipeline.rs crates/mb-decoder/src/uf.rs

/root/repo/target/release/deps/libmb_decoder-83248fafb2a96694.rlib: crates/mb-decoder/src/lib.rs crates/mb-decoder/src/backend.rs crates/mb-decoder/src/evaluation.rs crates/mb-decoder/src/micro.rs crates/mb-decoder/src/outcome.rs crates/mb-decoder/src/parity.rs crates/mb-decoder/src/pipeline.rs crates/mb-decoder/src/uf.rs

/root/repo/target/release/deps/libmb_decoder-83248fafb2a96694.rmeta: crates/mb-decoder/src/lib.rs crates/mb-decoder/src/backend.rs crates/mb-decoder/src/evaluation.rs crates/mb-decoder/src/micro.rs crates/mb-decoder/src/outcome.rs crates/mb-decoder/src/parity.rs crates/mb-decoder/src/pipeline.rs crates/mb-decoder/src/uf.rs

crates/mb-decoder/src/lib.rs:
crates/mb-decoder/src/backend.rs:
crates/mb-decoder/src/evaluation.rs:
crates/mb-decoder/src/micro.rs:
crates/mb-decoder/src/outcome.rs:
crates/mb-decoder/src/parity.rs:
crates/mb-decoder/src/pipeline.rs:
crates/mb-decoder/src/uf.rs:
