/root/repo/target/release/deps/mb_uf-3ff7381c26d029a7.d: crates/mb-uf/src/lib.rs crates/mb-uf/src/peeling.rs crates/mb-uf/src/union_find.rs Cargo.toml

/root/repo/target/release/deps/libmb_uf-3ff7381c26d029a7.rmeta: crates/mb-uf/src/lib.rs crates/mb-uf/src/peeling.rs crates/mb-uf/src/union_find.rs Cargo.toml

crates/mb-uf/src/lib.rs:
crates/mb-uf/src/peeling.rs:
crates/mb-uf/src/union_find.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
