/root/repo/target/release/deps/table4_resources-a1913b3006f12793.d: crates/bench/benches/table4_resources.rs Cargo.toml

/root/repo/target/release/deps/libtable4_resources-a1913b3006f12793.rmeta: crates/bench/benches/table4_resources.rs Cargo.toml

crates/bench/benches/table4_resources.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
