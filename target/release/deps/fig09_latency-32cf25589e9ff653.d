/root/repo/target/release/deps/fig09_latency-32cf25589e9ff653.d: crates/bench/benches/fig09_latency.rs Cargo.toml

/root/repo/target/release/deps/libfig09_latency-32cf25589e9ff653.rmeta: crates/bench/benches/fig09_latency.rs Cargo.toml

crates/bench/benches/fig09_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
