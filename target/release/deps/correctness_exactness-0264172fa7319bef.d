/root/repo/target/release/deps/correctness_exactness-0264172fa7319bef.d: crates/micro-blossom/../../tests/correctness_exactness.rs

/root/repo/target/release/deps/correctness_exactness-0264172fa7319bef: crates/micro-blossom/../../tests/correctness_exactness.rs

crates/micro-blossom/../../tests/correctness_exactness.rs:
