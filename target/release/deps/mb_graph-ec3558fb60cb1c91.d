/root/repo/target/release/deps/mb_graph-ec3558fb60cb1c91.d: crates/mb-graph/src/lib.rs crates/mb-graph/src/codes.rs crates/mb-graph/src/dijkstra.rs crates/mb-graph/src/export.rs crates/mb-graph/src/graph.rs crates/mb-graph/src/json.rs crates/mb-graph/src/syndrome.rs crates/mb-graph/src/types.rs crates/mb-graph/src/weights.rs Cargo.toml

/root/repo/target/release/deps/libmb_graph-ec3558fb60cb1c91.rmeta: crates/mb-graph/src/lib.rs crates/mb-graph/src/codes.rs crates/mb-graph/src/dijkstra.rs crates/mb-graph/src/export.rs crates/mb-graph/src/graph.rs crates/mb-graph/src/json.rs crates/mb-graph/src/syndrome.rs crates/mb-graph/src/types.rs crates/mb-graph/src/weights.rs Cargo.toml

crates/mb-graph/src/lib.rs:
crates/mb-graph/src/codes.rs:
crates/mb-graph/src/dijkstra.rs:
crates/mb-graph/src/export.rs:
crates/mb-graph/src/graph.rs:
crates/mb-graph/src/json.rs:
crates/mb-graph/src/syndrome.rs:
crates/mb-graph/src/types.rs:
crates/mb-graph/src/weights.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
