/root/repo/target/release/deps/table4_resources-0fe2999ab3e3a7a6.d: crates/bench/src/bin/table4_resources.rs

/root/repo/target/release/deps/table4_resources-0fe2999ab3e3a7a6: crates/bench/src/bin/table4_resources.rs

crates/bench/src/bin/table4_resources.rs:
