/root/repo/target/release/deps/rand_chacha-20aabf03799d2aea.d: shims/rand_chacha/src/lib.rs

/root/repo/target/release/deps/rand_chacha-20aabf03799d2aea: shims/rand_chacha/src/lib.rs

shims/rand_chacha/src/lib.rs:
