/root/repo/target/release/deps/mb_decoder-35a64820b6bdd967.d: crates/mb-decoder/src/lib.rs crates/mb-decoder/src/backend.rs crates/mb-decoder/src/evaluation.rs crates/mb-decoder/src/micro.rs crates/mb-decoder/src/outcome.rs crates/mb-decoder/src/parity.rs crates/mb-decoder/src/pipeline.rs crates/mb-decoder/src/uf.rs Cargo.toml

/root/repo/target/release/deps/libmb_decoder-35a64820b6bdd967.rmeta: crates/mb-decoder/src/lib.rs crates/mb-decoder/src/backend.rs crates/mb-decoder/src/evaluation.rs crates/mb-decoder/src/micro.rs crates/mb-decoder/src/outcome.rs crates/mb-decoder/src/parity.rs crates/mb-decoder/src/pipeline.rs crates/mb-decoder/src/uf.rs Cargo.toml

crates/mb-decoder/src/lib.rs:
crates/mb-decoder/src/backend.rs:
crates/mb-decoder/src/evaluation.rs:
crates/mb-decoder/src/micro.rs:
crates/mb-decoder/src/outcome.rs:
crates/mb-decoder/src/parity.rs:
crates/mb-decoder/src/pipeline.rs:
crates/mb-decoder/src/uf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
