/root/repo/target/release/deps/fig09_latency-b207e275a7238d70.d: crates/bench/src/bin/fig09_latency.rs

/root/repo/target/release/deps/fig09_latency-b207e275a7238d70: crates/bench/src/bin/fig09_latency.rs

crates/bench/src/bin/fig09_latency.rs:
