/root/repo/target/release/deps/decoder_accuracy-7f80931e7996ae2d.d: crates/micro-blossom/../../tests/decoder_accuracy.rs Cargo.toml

/root/repo/target/release/deps/libdecoder_accuracy-7f80931e7996ae2d.rmeta: crates/micro-blossom/../../tests/decoder_accuracy.rs Cargo.toml

crates/micro-blossom/../../tests/decoder_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
