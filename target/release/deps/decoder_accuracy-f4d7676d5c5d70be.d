/root/repo/target/release/deps/decoder_accuracy-f4d7676d5c5d70be.d: crates/micro-blossom/../../tests/decoder_accuracy.rs

/root/repo/target/release/deps/decoder_accuracy-f4d7676d5c5d70be: crates/micro-blossom/../../tests/decoder_accuracy.rs

crates/micro-blossom/../../tests/decoder_accuracy.rs:
