/root/repo/target/release/deps/stream_equals_batch-30dc5ef586a043a9.d: crates/micro-blossom/../../tests/stream_equals_batch.rs Cargo.toml

/root/repo/target/release/deps/libstream_equals_batch-30dc5ef586a043a9.rmeta: crates/micro-blossom/../../tests/stream_equals_batch.rs Cargo.toml

crates/micro-blossom/../../tests/stream_equals_batch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
