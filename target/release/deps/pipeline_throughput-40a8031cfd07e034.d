/root/repo/target/release/deps/pipeline_throughput-40a8031cfd07e034.d: crates/bench/src/bin/pipeline_throughput.rs

/root/repo/target/release/deps/pipeline_throughput-40a8031cfd07e034: crates/bench/src/bin/pipeline_throughput.rs

crates/bench/src/bin/pipeline_throughput.rs:
