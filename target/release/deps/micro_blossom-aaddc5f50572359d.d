/root/repo/target/release/deps/micro_blossom-aaddc5f50572359d.d: crates/micro-blossom/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libmicro_blossom-aaddc5f50572359d.rmeta: crates/micro-blossom/src/lib.rs Cargo.toml

crates/micro-blossom/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
