/root/repo/target/release/deps/mb_accel-2e9c5f14a180b29b.d: crates/mb-accel/src/lib.rs crates/mb-accel/src/accelerator.rs crates/mb-accel/src/driver.rs crates/mb-accel/src/instruction.rs crates/mb-accel/src/resource.rs crates/mb-accel/src/timing.rs

/root/repo/target/release/deps/mb_accel-2e9c5f14a180b29b: crates/mb-accel/src/lib.rs crates/mb-accel/src/accelerator.rs crates/mb-accel/src/driver.rs crates/mb-accel/src/instruction.rs crates/mb-accel/src/resource.rs crates/mb-accel/src/timing.rs

crates/mb-accel/src/lib.rs:
crates/mb-accel/src/accelerator.rs:
crates/mb-accel/src/driver.rs:
crates/mb-accel/src/instruction.rs:
crates/mb-accel/src/resource.rs:
crates/mb-accel/src/timing.rs:
