/root/repo/target/release/deps/stream_equals_batch-98df05fbf4b1333c.d: crates/micro-blossom/../../tests/stream_equals_batch.rs

/root/repo/target/release/deps/stream_equals_batch-98df05fbf4b1333c: crates/micro-blossom/../../tests/stream_equals_batch.rs

crates/micro-blossom/../../tests/stream_equals_batch.rs:
