/root/repo/target/release/deps/pipeline_throughput-3da2eb235101cf0d.d: crates/bench/src/bin/pipeline_throughput.rs Cargo.toml

/root/repo/target/release/deps/libpipeline_throughput-3da2eb235101cf0d.rmeta: crates/bench/src/bin/pipeline_throughput.rs Cargo.toml

crates/bench/src/bin/pipeline_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
