/root/repo/target/release/deps/fig10_ablation-c02fd3c30211ad50.d: crates/bench/benches/fig10_ablation.rs Cargo.toml

/root/repo/target/release/deps/libfig10_ablation-c02fd3c30211ad50.rmeta: crates/bench/benches/fig10_ablation.rs Cargo.toml

crates/bench/benches/fig10_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
