/root/repo/target/release/deps/fig10a_ablation-0d912533c1c5c2bf.d: crates/bench/src/bin/fig10a_ablation.rs

/root/repo/target/release/deps/fig10a_ablation-0d912533c1c5c2bf: crates/bench/src/bin/fig10a_ablation.rs

crates/bench/src/bin/fig10a_ablation.rs:
