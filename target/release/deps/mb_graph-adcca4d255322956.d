/root/repo/target/release/deps/mb_graph-adcca4d255322956.d: crates/mb-graph/src/lib.rs crates/mb-graph/src/codes.rs crates/mb-graph/src/dijkstra.rs crates/mb-graph/src/export.rs crates/mb-graph/src/graph.rs crates/mb-graph/src/json.rs crates/mb-graph/src/syndrome.rs crates/mb-graph/src/types.rs crates/mb-graph/src/weights.rs

/root/repo/target/release/deps/libmb_graph-adcca4d255322956.rlib: crates/mb-graph/src/lib.rs crates/mb-graph/src/codes.rs crates/mb-graph/src/dijkstra.rs crates/mb-graph/src/export.rs crates/mb-graph/src/graph.rs crates/mb-graph/src/json.rs crates/mb-graph/src/syndrome.rs crates/mb-graph/src/types.rs crates/mb-graph/src/weights.rs

/root/repo/target/release/deps/libmb_graph-adcca4d255322956.rmeta: crates/mb-graph/src/lib.rs crates/mb-graph/src/codes.rs crates/mb-graph/src/dijkstra.rs crates/mb-graph/src/export.rs crates/mb-graph/src/graph.rs crates/mb-graph/src/json.rs crates/mb-graph/src/syndrome.rs crates/mb-graph/src/types.rs crates/mb-graph/src/weights.rs

crates/mb-graph/src/lib.rs:
crates/mb-graph/src/codes.rs:
crates/mb-graph/src/dijkstra.rs:
crates/mb-graph/src/export.rs:
crates/mb-graph/src/graph.rs:
crates/mb-graph/src/json.rs:
crates/mb-graph/src/syndrome.rs:
crates/mb-graph/src/types.rs:
crates/mb-graph/src/weights.rs:
