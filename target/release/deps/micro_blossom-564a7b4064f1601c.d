/root/repo/target/release/deps/micro_blossom-564a7b4064f1601c.d: src/lib.rs

/root/repo/target/release/deps/libmicro_blossom-564a7b4064f1601c.rlib: src/lib.rs

/root/repo/target/release/deps/libmicro_blossom-564a7b4064f1601c.rmeta: src/lib.rs

src/lib.rs:
