/root/repo/target/release/deps/fig11_effective-88e1baf76644baa1.d: crates/bench/benches/fig11_effective.rs Cargo.toml

/root/repo/target/release/deps/libfig11_effective-88e1baf76644baa1.rmeta: crates/bench/benches/fig11_effective.rs Cargo.toml

crates/bench/benches/fig11_effective.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
