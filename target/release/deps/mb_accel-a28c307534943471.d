/root/repo/target/release/deps/mb_accel-a28c307534943471.d: crates/mb-accel/src/lib.rs crates/mb-accel/src/accelerator.rs crates/mb-accel/src/driver.rs crates/mb-accel/src/instruction.rs crates/mb-accel/src/resource.rs crates/mb-accel/src/timing.rs

/root/repo/target/release/deps/libmb_accel-a28c307534943471.rlib: crates/mb-accel/src/lib.rs crates/mb-accel/src/accelerator.rs crates/mb-accel/src/driver.rs crates/mb-accel/src/instruction.rs crates/mb-accel/src/resource.rs crates/mb-accel/src/timing.rs

/root/repo/target/release/deps/libmb_accel-a28c307534943471.rmeta: crates/mb-accel/src/lib.rs crates/mb-accel/src/accelerator.rs crates/mb-accel/src/driver.rs crates/mb-accel/src/instruction.rs crates/mb-accel/src/resource.rs crates/mb-accel/src/timing.rs

crates/mb-accel/src/lib.rs:
crates/mb-accel/src/accelerator.rs:
crates/mb-accel/src/driver.rs:
crates/mb-accel/src/instruction.rs:
crates/mb-accel/src/resource.rs:
crates/mb-accel/src/timing.rs:
