/root/repo/target/release/deps/fig02_amdahl-6def7f28c845d4ad.d: crates/bench/src/bin/fig02_amdahl.rs Cargo.toml

/root/repo/target/release/deps/libfig02_amdahl-6def7f28c845d4ad.rmeta: crates/bench/src/bin/fig02_amdahl.rs Cargo.toml

crates/bench/src/bin/fig02_amdahl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
