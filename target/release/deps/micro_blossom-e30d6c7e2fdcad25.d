/root/repo/target/release/deps/micro_blossom-e30d6c7e2fdcad25.d: crates/micro-blossom/src/lib.rs

/root/repo/target/release/deps/micro_blossom-e30d6c7e2fdcad25: crates/micro-blossom/src/lib.rs

crates/micro-blossom/src/lib.rs:
