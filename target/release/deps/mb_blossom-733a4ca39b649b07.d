/root/repo/target/release/deps/mb_blossom-733a4ca39b649b07.d: crates/mb-blossom/src/lib.rs crates/mb-blossom/src/dual_serial.rs crates/mb-blossom/src/exact.rs crates/mb-blossom/src/interface.rs crates/mb-blossom/src/matching.rs crates/mb-blossom/src/primal.rs crates/mb-blossom/src/solver.rs Cargo.toml

/root/repo/target/release/deps/libmb_blossom-733a4ca39b649b07.rmeta: crates/mb-blossom/src/lib.rs crates/mb-blossom/src/dual_serial.rs crates/mb-blossom/src/exact.rs crates/mb-blossom/src/interface.rs crates/mb-blossom/src/matching.rs crates/mb-blossom/src/primal.rs crates/mb-blossom/src/solver.rs Cargo.toml

crates/mb-blossom/src/lib.rs:
crates/mb-blossom/src/dual_serial.rs:
crates/mb-blossom/src/exact.rs:
crates/mb-blossom/src/interface.rs:
crates/mb-blossom/src/matching.rs:
crates/mb-blossom/src/primal.rs:
crates/mb-blossom/src/solver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
