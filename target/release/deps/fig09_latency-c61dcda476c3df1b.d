/root/repo/target/release/deps/fig09_latency-c61dcda476c3df1b.d: crates/bench/src/bin/fig09_latency.rs

/root/repo/target/release/deps/fig09_latency-c61dcda476c3df1b: crates/bench/src/bin/fig09_latency.rs

crates/bench/src/bin/fig09_latency.rs:
