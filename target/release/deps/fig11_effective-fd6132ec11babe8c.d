/root/repo/target/release/deps/fig11_effective-fd6132ec11babe8c.d: crates/bench/src/bin/fig11_effective.rs

/root/repo/target/release/deps/fig11_effective-fd6132ec11babe8c: crates/bench/src/bin/fig11_effective.rs

crates/bench/src/bin/fig11_effective.rs:
