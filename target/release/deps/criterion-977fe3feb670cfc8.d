/root/repo/target/release/deps/criterion-977fe3feb670cfc8.d: shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-977fe3feb670cfc8.rmeta: shims/criterion/src/lib.rs Cargo.toml

shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
