/root/repo/target/release/deps/bench-3ca10ed1bb024be7.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/release/deps/bench-3ca10ed1bb024be7: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
