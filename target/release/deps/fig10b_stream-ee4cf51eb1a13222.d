/root/repo/target/release/deps/fig10b_stream-ee4cf51eb1a13222.d: crates/bench/src/bin/fig10b_stream.rs Cargo.toml

/root/repo/target/release/deps/libfig10b_stream-ee4cf51eb1a13222.rmeta: crates/bench/src/bin/fig10b_stream.rs Cargo.toml

crates/bench/src/bin/fig10b_stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
