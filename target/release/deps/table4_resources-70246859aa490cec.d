/root/repo/target/release/deps/table4_resources-70246859aa490cec.d: crates/bench/benches/table4_resources.rs

/root/repo/target/release/deps/table4_resources-70246859aa490cec: crates/bench/benches/table4_resources.rs

crates/bench/benches/table4_resources.rs:
