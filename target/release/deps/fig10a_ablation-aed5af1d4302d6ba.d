/root/repo/target/release/deps/fig10a_ablation-aed5af1d4302d6ba.d: crates/bench/src/bin/fig10a_ablation.rs

/root/repo/target/release/deps/fig10a_ablation-aed5af1d4302d6ba: crates/bench/src/bin/fig10a_ablation.rs

crates/bench/src/bin/fig10a_ablation.rs:
