/root/repo/target/release/deps/table4_resources-86aa9e7704b7389c.d: crates/bench/src/bin/table4_resources.rs Cargo.toml

/root/repo/target/release/deps/libtable4_resources-86aa9e7704b7389c.rmeta: crates/bench/src/bin/table4_resources.rs Cargo.toml

crates/bench/src/bin/table4_resources.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
