/root/repo/target/release/deps/fig11_effective-8d8178c5bd4c7e48.d: crates/bench/src/bin/fig11_effective.rs

/root/repo/target/release/deps/fig11_effective-8d8178c5bd4c7e48: crates/bench/src/bin/fig11_effective.rs

crates/bench/src/bin/fig11_effective.rs:
