/root/repo/target/release/deps/rand_chacha-5aa38effa6b0dd3d.d: shims/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-5aa38effa6b0dd3d.rlib: shims/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-5aa38effa6b0dd3d.rmeta: shims/rand_chacha/src/lib.rs

shims/rand_chacha/src/lib.rs:
