/root/repo/target/release/deps/rand-6a8bb67972cf34ff.d: shims/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-6a8bb67972cf34ff.rmeta: shims/rand/src/lib.rs Cargo.toml

shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
