/root/repo/target/release/deps/pipeline_equals_serial-8e51d5191830a12e.d: crates/micro-blossom/../../tests/pipeline_equals_serial.rs

/root/repo/target/release/deps/pipeline_equals_serial-8e51d5191830a12e: crates/micro-blossom/../../tests/pipeline_equals_serial.rs

crates/micro-blossom/../../tests/pipeline_equals_serial.rs:
