/root/repo/target/release/deps/table4_resources-f78740d4d28de133.d: crates/bench/src/bin/table4_resources.rs Cargo.toml

/root/repo/target/release/deps/libtable4_resources-f78740d4d28de133.rmeta: crates/bench/src/bin/table4_resources.rs Cargo.toml

crates/bench/src/bin/table4_resources.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
