/root/repo/target/release/deps/fig02_amdahl-060c723d8dfbe04f.d: crates/bench/src/bin/fig02_amdahl.rs

/root/repo/target/release/deps/fig02_amdahl-060c723d8dfbe04f: crates/bench/src/bin/fig02_amdahl.rs

crates/bench/src/bin/fig02_amdahl.rs:
