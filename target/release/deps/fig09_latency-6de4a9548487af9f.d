/root/repo/target/release/deps/fig09_latency-6de4a9548487af9f.d: crates/bench/src/bin/fig09_latency.rs Cargo.toml

/root/repo/target/release/deps/libfig09_latency-6de4a9548487af9f.rmeta: crates/bench/src/bin/fig09_latency.rs Cargo.toml

crates/bench/src/bin/fig09_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
