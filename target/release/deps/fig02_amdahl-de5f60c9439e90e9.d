/root/repo/target/release/deps/fig02_amdahl-de5f60c9439e90e9.d: crates/bench/src/bin/fig02_amdahl.rs

/root/repo/target/release/deps/fig02_amdahl-de5f60c9439e90e9: crates/bench/src/bin/fig02_amdahl.rs

crates/bench/src/bin/fig02_amdahl.rs:
