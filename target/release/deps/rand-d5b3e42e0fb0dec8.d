/root/repo/target/release/deps/rand-d5b3e42e0fb0dec8.d: shims/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-d5b3e42e0fb0dec8.rmeta: shims/rand/src/lib.rs Cargo.toml

shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
