/root/repo/target/release/deps/fig10b_stream-eaaed5effb418aff.d: crates/bench/src/bin/fig10b_stream.rs

/root/repo/target/release/deps/fig10b_stream-eaaed5effb418aff: crates/bench/src/bin/fig10b_stream.rs

crates/bench/src/bin/fig10b_stream.rs:
