/root/repo/target/release/deps/fig02_amdahl-fe76063d3f0cced0.d: crates/bench/benches/fig02_amdahl.rs Cargo.toml

/root/repo/target/release/deps/libfig02_amdahl-fe76063d3f0cced0.rmeta: crates/bench/benches/fig02_amdahl.rs Cargo.toml

crates/bench/benches/fig02_amdahl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
