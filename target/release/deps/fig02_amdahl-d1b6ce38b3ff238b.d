/root/repo/target/release/deps/fig02_amdahl-d1b6ce38b3ff238b.d: crates/bench/src/bin/fig02_amdahl.rs Cargo.toml

/root/repo/target/release/deps/libfig02_amdahl-d1b6ce38b3ff238b.rmeta: crates/bench/src/bin/fig02_amdahl.rs Cargo.toml

crates/bench/src/bin/fig02_amdahl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
