/root/repo/target/release/deps/table4_resources-3e29cb0298169570.d: crates/bench/src/bin/table4_resources.rs

/root/repo/target/release/deps/table4_resources-3e29cb0298169570: crates/bench/src/bin/table4_resources.rs

crates/bench/src/bin/table4_resources.rs:
