/root/repo/target/release/deps/rand_chacha-7798eefa166cd1a9.d: shims/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand_chacha-7798eefa166cd1a9.rmeta: shims/rand_chacha/src/lib.rs Cargo.toml

shims/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
