/root/repo/target/release/deps/mb_uf-711fe39d212df4fc.d: crates/mb-uf/src/lib.rs crates/mb-uf/src/peeling.rs crates/mb-uf/src/union_find.rs

/root/repo/target/release/deps/libmb_uf-711fe39d212df4fc.rlib: crates/mb-uf/src/lib.rs crates/mb-uf/src/peeling.rs crates/mb-uf/src/union_find.rs

/root/repo/target/release/deps/libmb_uf-711fe39d212df4fc.rmeta: crates/mb-uf/src/lib.rs crates/mb-uf/src/peeling.rs crates/mb-uf/src/union_find.rs

crates/mb-uf/src/lib.rs:
crates/mb-uf/src/peeling.rs:
crates/mb-uf/src/union_find.rs:
