/root/repo/target/release/deps/rand_chacha-3139778d61514e4b.d: shims/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand_chacha-3139778d61514e4b.rmeta: shims/rand_chacha/src/lib.rs Cargo.toml

shims/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
