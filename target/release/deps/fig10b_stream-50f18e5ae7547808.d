/root/repo/target/release/deps/fig10b_stream-50f18e5ae7547808.d: crates/bench/src/bin/fig10b_stream.rs

/root/repo/target/release/deps/fig10b_stream-50f18e5ae7547808: crates/bench/src/bin/fig10b_stream.rs

crates/bench/src/bin/fig10b_stream.rs:
