/root/repo/target/release/deps/mb_blossom-047f64107f8ababa.d: crates/mb-blossom/src/lib.rs crates/mb-blossom/src/dual_serial.rs crates/mb-blossom/src/exact.rs crates/mb-blossom/src/interface.rs crates/mb-blossom/src/matching.rs crates/mb-blossom/src/primal.rs crates/mb-blossom/src/solver.rs

/root/repo/target/release/deps/libmb_blossom-047f64107f8ababa.rlib: crates/mb-blossom/src/lib.rs crates/mb-blossom/src/dual_serial.rs crates/mb-blossom/src/exact.rs crates/mb-blossom/src/interface.rs crates/mb-blossom/src/matching.rs crates/mb-blossom/src/primal.rs crates/mb-blossom/src/solver.rs

/root/repo/target/release/deps/libmb_blossom-047f64107f8ababa.rmeta: crates/mb-blossom/src/lib.rs crates/mb-blossom/src/dual_serial.rs crates/mb-blossom/src/exact.rs crates/mb-blossom/src/interface.rs crates/mb-blossom/src/matching.rs crates/mb-blossom/src/primal.rs crates/mb-blossom/src/solver.rs

crates/mb-blossom/src/lib.rs:
crates/mb-blossom/src/dual_serial.rs:
crates/mb-blossom/src/exact.rs:
crates/mb-blossom/src/interface.rs:
crates/mb-blossom/src/matching.rs:
crates/mb-blossom/src/primal.rs:
crates/mb-blossom/src/solver.rs:
