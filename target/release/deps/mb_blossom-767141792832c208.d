/root/repo/target/release/deps/mb_blossom-767141792832c208.d: crates/mb-blossom/src/lib.rs crates/mb-blossom/src/dual_serial.rs crates/mb-blossom/src/exact.rs crates/mb-blossom/src/interface.rs crates/mb-blossom/src/matching.rs crates/mb-blossom/src/primal.rs crates/mb-blossom/src/solver.rs

/root/repo/target/release/deps/mb_blossom-767141792832c208: crates/mb-blossom/src/lib.rs crates/mb-blossom/src/dual_serial.rs crates/mb-blossom/src/exact.rs crates/mb-blossom/src/interface.rs crates/mb-blossom/src/matching.rs crates/mb-blossom/src/primal.rs crates/mb-blossom/src/solver.rs

crates/mb-blossom/src/lib.rs:
crates/mb-blossom/src/dual_serial.rs:
crates/mb-blossom/src/exact.rs:
crates/mb-blossom/src/interface.rs:
crates/mb-blossom/src/matching.rs:
crates/mb-blossom/src/primal.rs:
crates/mb-blossom/src/solver.rs:
