/root/repo/target/release/deps/bench-56853f933475d4b9.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs Cargo.toml

/root/repo/target/release/deps/libbench-56853f933475d4b9.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
