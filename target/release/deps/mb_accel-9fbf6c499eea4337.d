/root/repo/target/release/deps/mb_accel-9fbf6c499eea4337.d: crates/mb-accel/src/lib.rs crates/mb-accel/src/accelerator.rs crates/mb-accel/src/driver.rs crates/mb-accel/src/instruction.rs crates/mb-accel/src/resource.rs crates/mb-accel/src/timing.rs Cargo.toml

/root/repo/target/release/deps/libmb_accel-9fbf6c499eea4337.rmeta: crates/mb-accel/src/lib.rs crates/mb-accel/src/accelerator.rs crates/mb-accel/src/driver.rs crates/mb-accel/src/instruction.rs crates/mb-accel/src/resource.rs crates/mb-accel/src/timing.rs Cargo.toml

crates/mb-accel/src/lib.rs:
crates/mb-accel/src/accelerator.rs:
crates/mb-accel/src/driver.rs:
crates/mb-accel/src/instruction.rs:
crates/mb-accel/src/resource.rs:
crates/mb-accel/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
