/root/repo/target/release/deps/mb_uf-d1a25ebdbc4a0601.d: crates/mb-uf/src/lib.rs crates/mb-uf/src/peeling.rs crates/mb-uf/src/union_find.rs

/root/repo/target/release/deps/mb_uf-d1a25ebdbc4a0601: crates/mb-uf/src/lib.rs crates/mb-uf/src/peeling.rs crates/mb-uf/src/union_find.rs

crates/mb-uf/src/lib.rs:
crates/mb-uf/src/peeling.rs:
crates/mb-uf/src/union_find.rs:
