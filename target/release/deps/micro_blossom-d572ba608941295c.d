/root/repo/target/release/deps/micro_blossom-d572ba608941295c.d: crates/micro-blossom/src/lib.rs

/root/repo/target/release/deps/libmicro_blossom-d572ba608941295c.rlib: crates/micro-blossom/src/lib.rs

/root/repo/target/release/deps/libmicro_blossom-d572ba608941295c.rmeta: crates/micro-blossom/src/lib.rs

crates/micro-blossom/src/lib.rs:
