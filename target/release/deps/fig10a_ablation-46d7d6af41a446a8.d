/root/repo/target/release/deps/fig10a_ablation-46d7d6af41a446a8.d: crates/bench/src/bin/fig10a_ablation.rs Cargo.toml

/root/repo/target/release/deps/libfig10a_ablation-46d7d6af41a446a8.rmeta: crates/bench/src/bin/fig10a_ablation.rs Cargo.toml

crates/bench/src/bin/fig10a_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
