/root/repo/target/release/deps/micro_blossom-8ace88c0225407c9.d: crates/micro-blossom/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libmicro_blossom-8ace88c0225407c9.rmeta: crates/micro-blossom/src/lib.rs Cargo.toml

crates/micro-blossom/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
