/root/repo/target/release/deps/fig11_effective-d3ba6964869de4b6.d: crates/bench/src/bin/fig11_effective.rs Cargo.toml

/root/repo/target/release/deps/libfig11_effective-d3ba6964869de4b6.rmeta: crates/bench/src/bin/fig11_effective.rs Cargo.toml

crates/bench/src/bin/fig11_effective.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
