/root/repo/target/release/deps/fig10a_ablation-7da21fbd5df334ed.d: crates/bench/src/bin/fig10a_ablation.rs Cargo.toml

/root/repo/target/release/deps/libfig10a_ablation-7da21fbd5df334ed.rmeta: crates/bench/src/bin/fig10a_ablation.rs Cargo.toml

crates/bench/src/bin/fig10a_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
