/root/repo/target/release/deps/bench-3030fde91b961cb8.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/release/deps/libbench-3030fde91b961cb8.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/release/deps/libbench-3030fde91b961cb8.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
