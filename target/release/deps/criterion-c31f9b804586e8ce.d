/root/repo/target/release/deps/criterion-c31f9b804586e8ce.d: shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-c31f9b804586e8ce.rmeta: shims/criterion/src/lib.rs Cargo.toml

shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
