/root/repo/target/release/deps/pipeline_throughput-b43a7f9dcfcc25ba.d: crates/bench/src/bin/pipeline_throughput.rs

/root/repo/target/release/deps/pipeline_throughput-b43a7f9dcfcc25ba: crates/bench/src/bin/pipeline_throughput.rs

crates/bench/src/bin/pipeline_throughput.rs:
