/root/repo/target/release/deps/fig09_latency-06ad97f096e8c490.d: crates/bench/src/bin/fig09_latency.rs Cargo.toml

/root/repo/target/release/deps/libfig09_latency-06ad97f096e8c490.rmeta: crates/bench/src/bin/fig09_latency.rs Cargo.toml

crates/bench/src/bin/fig09_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
