/root/repo/target/release/deps/correctness_exactness-03e77d1526d2ed3f.d: crates/micro-blossom/../../tests/correctness_exactness.rs Cargo.toml

/root/repo/target/release/deps/libcorrectness_exactness-03e77d1526d2ed3f.rmeta: crates/micro-blossom/../../tests/correctness_exactness.rs Cargo.toml

crates/micro-blossom/../../tests/correctness_exactness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
