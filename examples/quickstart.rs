//! Quickstart: decode one shot of a distance-5 surface code with Micro
//! Blossom and print the matching, the correction, and the modeled latency.
//!
//! Run with: `cargo run -r --example quickstart`

use mb_decoder::{DecoderBackend, MicroBlossomDecoder};
use mb_graph::codes::PhenomenologicalCode;
use mb_graph::syndrome::ErrorSampler;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn main() {
    let d = 5;
    let p = 0.005;
    // d rounds of noisy stabilizer measurement of the rotated surface code
    let graph = Arc::new(PhenomenologicalCode::rotated(d, d, p).decoding_graph());
    println!(
        "decoding graph: {} vertices ({} virtual), {} edges, {} rounds",
        graph.vertex_count(),
        graph.virtual_count(),
        graph.edge_count(),
        graph.num_layers()
    );

    let mut decoder = MicroBlossomDecoder::full(Arc::clone(&graph), Some(d));
    let sampler = ErrorSampler::new(&graph);
    let mut rng = ChaCha8Rng::seed_from_u64(2025);

    for shot_index in 0..8 {
        let shot = sampler.sample(&mut rng);
        let outcome = decoder.decode(&shot.syndrome);
        let matching = outcome.matching.as_ref().unwrap();
        println!(
            "shot {shot_index}: {} defects, {} matched pairs, {} boundary matches, \
             latency {:.3} us, logical error: {}",
            shot.syndrome.len(),
            matching.pairs.len(),
            matching.boundary.len(),
            outcome.latency_ns / 1000.0,
            outcome.observable != shot.observable,
        );
    }
}
