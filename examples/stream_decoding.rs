//! Stream decoding with round-wise fusion: the scenario of Figure 4 — a
//! logical T gate waits for the decoder's feedforward signal, so every
//! measurement round must be folded into the running solution as soon as it
//! arrives and the latency that matters is the time *after the last round*.
//!
//! Run with: `cargo run -r --example stream_decoding`

use mb_decoder::{DecoderBackend, MicroBlossomConfig, MicroBlossomDecoder};
use mb_graph::codes::PhenomenologicalCode;
use mb_graph::syndrome::ErrorSampler;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn main() {
    let d = 5;
    let p = 0.001;
    let shots = 200;
    println!("round-wise fusion vs batch decoding, d = {d}, p = {p}, {shots} shots\n");
    for rounds in [4usize, 8, 12, 16] {
        let graph = Arc::new(PhenomenologicalCode::rotated(d, rounds, p).decoding_graph());
        let sampler = ErrorSampler::new(&graph);
        let mut stream = MicroBlossomDecoder::new(
            Arc::clone(&graph),
            MicroBlossomConfig::full(&graph, Some(d)),
        );
        let mut batch = MicroBlossomDecoder::new(
            Arc::clone(&graph),
            MicroBlossomConfig::with_parallel_primal(&graph, Some(d)),
        );
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let (mut stream_ns, mut batch_ns) = (0.0, 0.0);
        for _ in 0..shots {
            let shot = sampler.sample(&mut rng);
            stream_ns += stream.decode(&shot.syndrome).latency_ns;
            batch_ns += batch.decode(&shot.syndrome).latency_ns;
        }
        println!(
            "{rounds:>2} measurement rounds: batch {:.3} us, stream {:.3} us",
            batch_ns / shots as f64 / 1000.0,
            stream_ns / shots as f64 / 1000.0,
        );
    }
    println!("\nstream latency stays flat as rounds grow: the decoder only works on recent rounds (Fig. 10b).");
}
