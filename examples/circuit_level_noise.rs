//! Circuit-level noise end to end: compile a syndrome-extraction fault
//! model into a decoding graph, stream mechanism-sampled shots into the
//! decoder round by round, and track the running logical error rate.
//!
//! The walk-through:
//!
//! 1. `CircuitLevelCode::rotated(d, rounds, p)` enumerates every fault
//!    location (data idle, CNOT, measurement, reset), propagates each to
//!    its detector pair, and merges parallel mechanisms into LLR-weighted
//!    edges — including the diagonal space-time edges phenomenological
//!    noise lacks.
//! 2. `CircuitErrorSampler` samples *mechanisms* (not merged edges), so
//!    shots carry the correlated per-round defect densities of a real
//!    circuit.
//! 3. Each shot is fed to a `StreamDecoder` one measurement round at a
//!    time through `begin_shot`/`RoundFeeder`, exactly as a live syndrome
//!    stream would arrive.
//!
//! Run with: `cargo run -r --example circuit_level_noise [shots] [d] [p]`

use mb_decoder::pipeline::shot_rng;
use mb_decoder::stream::StreamDecoder;
use mb_decoder::BackendSpec;
use mb_graph::circuit::CircuitLevelCode;
use std::sync::Arc;

fn main() {
    let mut args = std::env::args().skip(1);
    let shots: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2000);
    let d: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);
    let p: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.02);

    let code = CircuitLevelCode::rotated(d, d, p);
    let circuit = Arc::new(code.compile());
    let graph = circuit.graph();
    println!("circuit-level rotated surface code: d={d}, rounds={d}, physical p={p}");
    println!(
        "  fault mechanisms: {} (per-location infidelity {:.2e})",
        circuit.mechanisms().len(),
        code.noise.p_cnot,
    );
    println!(
        "  merged decoding graph: {} vertices, {} edges ({} diagonal space-time edges)",
        graph.vertex_count(),
        graph.edge_count(),
        circuit.diagonal_edge_count(),
    );

    let stream = StreamDecoder::builder(BackendSpec::micro_full(Some(d)), Arc::clone(graph))
        .queue_capacity(64)
        .start();
    let sampler = circuit.sampler();
    let mut errors = 0usize;
    let mut defects = 0usize;
    let mut latency_ns = 0.0f64;
    let mut layer_buffer = Vec::new();
    for index in 0..shots {
        // sample the round's faults and split the syndrome by fusion layer,
        // then feed the decoder one measurement round at a time
        let mut rng = shot_rng(0xC1AC0FFE, index as u64);
        let shot = sampler.sample(&mut rng);
        defects += shot.syndrome.len();
        let mut feeder = stream.begin_shot(shot.observable).expect("stream is open");
        shot.syndrome.split_by_layer_into(graph, &mut layer_buffer);
        for layer in &layer_buffer {
            feeder.push_round(layer).expect("rounds are valid");
        }
        let outcome = feeder.finish().recv().expect("no faults injected");
        errors += usize::from(outcome.is_logical_error());
        latency_ns += outcome.latency_ns;
        if (index + 1) % (shots / 4).max(1) == 0 {
            println!(
                "  after {:>6} shots: running p_L = {:.4}, {:.2} defects/shot, mean latency {:.2} us",
                index + 1,
                errors as f64 / (index + 1) as f64,
                defects as f64 / (index + 1) as f64,
                latency_ns / (index + 1) as f64 / 1000.0,
            );
        }
    }
    stream.close();
    println!(
        "\ncircuit-level p_L = {:.4} over {shots} shots; the same physical p under \
         phenomenological noise flips every qubit and measurement with the full p, \
         an upper bound on this workload (see `cargo run -r -p bench --bin circuit_sweep`)",
        errors as f64 / shots as f64,
    );
}
