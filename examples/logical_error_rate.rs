//! Logical memory experiment: compare the logical error rate and the
//! effective logical error rate (including latency-induced idle errors,
//! §8.3) of Micro Blossom against the Union-Find decoder.
//!
//! Run with: `cargo run -r -p mb-decoder --example logical_error_rate [shots]`

use mb_decoder::{evaluate_decoder, MicroBlossomDecoder, ParityBlossomDecoder, UnionFindDecoderAdapter};
use mb_graph::codes::PhenomenologicalCode;
use std::sync::Arc;

fn main() {
    let shots: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    println!("logical memory experiment, {shots} shots per point\n");
    println!("{:>3} {:>7} {:>12} {:>12} {:>12} {:>14}", "d", "p", "p_L (MWPM)", "p_L (UF)", "L_micro (us)", "p_eff (micro)");
    for d in [3usize, 5] {
        for p in [0.005, 0.01, 0.02] {
            let graph = Arc::new(PhenomenologicalCode::rotated(d, d, p).decoding_graph());
            let mut micro = MicroBlossomDecoder::full(Arc::clone(&graph), Some(d));
            let mut parity = ParityBlossomDecoder::new(Arc::clone(&graph));
            let mut uf = UnionFindDecoderAdapter::new(Arc::clone(&graph));
            let mwpm = evaluate_decoder(&mut parity, &graph, shots, 1);
            let micro_eval = evaluate_decoder(&mut micro, &graph, shots, 1);
            let uf_eval = evaluate_decoder(&mut uf, &graph, shots, 1);
            println!(
                "{d:>3} {p:>7.3} {:>12.4} {:>12.4} {:>12.3} {:>14.4}",
                mwpm.logical_error_rate(),
                uf_eval.logical_error_rate(),
                micro_eval.mean_latency_ns() / 1000.0,
                micro_eval.effective_logical_error_rate(d, 1000.0),
            );
        }
    }
    println!("\nexact MWPM decoding (Micro Blossom) keeps p_L at the MWPM level while staying fast enough that the effective rate barely grows.");
}
