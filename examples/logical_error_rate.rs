//! Logical memory experiment: compare the logical error rate and the
//! effective logical error rate (including latency-induced idle errors,
//! §8.3) of Micro Blossom against the Union-Find decoder.
//!
//! All evaluations run through the sharded multi-threaded pipeline; pass a
//! shard count as the second argument to control the worker threads (the
//! numbers are identical for any shard count — only wall clock changes).
//!
//! Run with: `cargo run -r --example logical_error_rate [shots] [shards]`

use mb_decoder::pipeline::ShardedPipeline;
use mb_decoder::BackendSpec;
use mb_graph::codes::PhenomenologicalCode;
use std::sync::Arc;

fn main() {
    let shots: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    let shards: Option<usize> = std::env::args().nth(2).and_then(|s| s.parse().ok());
    println!("logical memory experiment, {shots} shots per point (sharded pipeline)\n");
    println!(
        "{:>3} {:>7} {:>12} {:>12} {:>12} {:>14}",
        "d", "p", "p_L (MWPM)", "p_L (UF)", "L_micro (us)", "p_eff (micro)"
    );
    for d in [3usize, 5] {
        for p in [0.005, 0.01, 0.02] {
            let graph = Arc::new(PhenomenologicalCode::rotated(d, d, p).decoding_graph());
            let evaluate = |spec: BackendSpec| {
                let mut pipeline = ShardedPipeline::new(spec, Arc::clone(&graph));
                if let Some(shards) = shards {
                    pipeline = pipeline.with_shards(shards);
                }
                pipeline.evaluate(shots, 1)
            };
            let mwpm = evaluate(BackendSpec::Parity);
            let micro_eval = evaluate(BackendSpec::micro_full(Some(d)));
            let uf_eval = evaluate(BackendSpec::union_find());
            println!(
                "{d:>3} {p:>7.3} {:>12.4} {:>12.4} {:>12.3} {:>14.4}",
                mwpm.logical_error_rate(),
                uf_eval.logical_error_rate(),
                micro_eval.mean_latency_ns() / 1000.0,
                micro_eval.effective_logical_error_rate(d, 1000.0),
            );
        }
    }
    println!("\nexact MWPM decoding (Micro Blossom) keeps p_L at the MWPM level while staying fast enough that the effective rate barely grows.");
}
