//! Accelerator generation and inspection: the analogue of the paper's
//! artifact Experiment 1 (Verilog generation from a decoding-graph JSON) and
//! Experiment 3 (resource estimation, Table 4).
//!
//! Exports the decoding graph as JSON, rebuilds it from the JSON, constructs
//! the accelerator, and prints its resource estimate and a short instruction
//! trace.
//!
//! Run with: `cargo run -r --example accelerator_inspection`

use mb_accel::{estimate_resources, AcceleratorConfig, Instruction, MicroBlossomAccelerator};
use mb_graph::codes::PhenomenologicalCode;
use mb_graph::export::GraphDescription;
use std::sync::Arc;

fn main() {
    let d = 3;
    let graph = PhenomenologicalCode::rotated(d, d, 0.001).decoding_graph();

    // export the graph in the artifact's JSON style and round-trip it
    let description = GraphDescription::from_graph(&graph);
    let json = description.to_json().expect("graph serializes to JSON");
    println!(
        "decoding graph JSON ({} bytes), first 200 chars:",
        json.len()
    );
    println!("{}\n...", &json[..200.min(json.len())]);
    let rebuilt = GraphDescription::from_json(&json)
        .expect("JSON parses")
        .to_graph()
        .expect("graph rebuilds");
    assert_eq!(rebuilt, graph);

    // build the accelerator and print its resource estimate (Table 4 row)
    let graph = Arc::new(rebuilt);
    let config = AcceleratorConfig {
        prematch_enabled: false,
        fusion_weight_reduction: false,
        ..AcceleratorConfig::default()
    };
    let mut accel = MicroBlossomAccelerator::new(Arc::clone(&graph), config);
    let estimate = estimate_resources(&graph, Some(d));
    println!(
        "accelerator for d = {d}: |V| = {}, |E| = {}, vPU = {} bits, ePU = {} bits, \
         register bits = {}, ~{:.0}k LUTs @ {:.0} MHz",
        estimate.vertices,
        estimate.edges,
        estimate.vpu_bits,
        estimate.epu_bits,
        estimate.fpga_memory_bits,
        estimate.luts / 1000.0,
        estimate.frequency_mhz
    );

    // drive it with a few raw instructions (the encoding of Table 3)
    let defect = (0..graph.vertex_count())
        .find(|&v| !graph.is_virtual(v) && graph.layer_of(v) == 0)
        .expect("the graph has regular vertices");
    accel.execute(Instruction::Reset);
    accel.stage_syndrome(0, &[defect]);
    let program = [
        Instruction::LoadDefects { layer: 0 },
        Instruction::FindConflict,
        Instruction::Grow { length: 2 },
        Instruction::FindConflict,
    ];
    println!("\ninstruction trace:");
    for instruction in program {
        let response = accel.execute(instruction);
        println!(
            "  {:#010x}  {:?}  ->  {:?}",
            instruction.encode(),
            instruction,
            response
        );
    }
    println!(
        "\ntotal cycles: {}, convergecast depth: {} cycles",
        accel.stats.cycles,
        accel.convergecast_cycles()
    );
}
