//! Real-time streaming decode: a producer thread plays the role of the
//! quantum hardware, pushing each shot's measurement rounds into a
//! [`StreamDecoder`] as they "arrive" (one simulated measurement cycle per
//! round), while a consumer thread receives the outcomes and prints running
//! logical-error and submit-to-result latency estimates.
//!
//! The decoding workers fold every round into their running solution on
//! arrival (round-wise fusion, §6), so only the post-last-round work sits
//! between the final measurement and the feedforward signal.
//!
//! Run with: `cargo run -r --example realtime_stream`

use mb_decoder::pipeline::shot_rng;
use mb_decoder::stream::StreamDecoder;
use mb_decoder::BackendSpec;
use mb_graph::codes::PhenomenologicalCode;
use mb_graph::syndrome::ErrorSampler;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let d = 3;
    let rounds = 5;
    let p = 0.01;
    let shots = 400;
    // one simulated measurement cycle between rounds; well above the decode
    // time so the stream runs defect-arrival-bound, like the real machine
    let cycle = Duration::from_micros(50);

    let graph = Arc::new(PhenomenologicalCode::rotated(d, rounds, p).decoding_graph());
    println!(
        "real-time stream: d = {d}, {rounds} rounds, p = {p}, {shots} shots, \
         {}us per measurement cycle\n",
        cycle.as_micros()
    );
    let stream = StreamDecoder::builder(BackendSpec::micro_full(Some(d)), Arc::clone(&graph))
        .queue_capacity(16)
        .start();

    std::thread::scope(|scope| {
        // tickets flow producer -> consumer in submission order
        let (ticket_tx, ticket_rx) = mpsc::channel();

        let producer_graph = Arc::clone(&graph);
        let producer_stream = &stream;
        scope.spawn(move || {
            let sampler = ErrorSampler::new(&producer_graph);
            for shot_index in 0..shots {
                let mut rng = shot_rng(2026, shot_index);
                let shot = sampler.sample(&mut rng);
                let mut feeder = producer_stream
                    .begin_shot(shot.observable)
                    .expect("stream is open while the producer runs");
                for round in shot.syndrome.split_by_layer(&producer_graph) {
                    std::thread::sleep(cycle);
                    feeder.push_round(&round).expect("rounds are valid");
                }
                // the latency that matters starts at the last round
                let submitted_at = Instant::now();
                if ticket_tx.send((feeder.finish(), submitted_at)).is_err() {
                    break;
                }
            }
        });

        scope.spawn(move || {
            let mut errors = 0usize;
            let mut decoded = 0usize;
            let mut wall_latency_us = 0.0f64;
            let mut modeled_latency_us = 0.0f64;
            while let Ok((ticket, submitted_at)) = ticket_rx.recv() {
                let outcome = ticket.recv().expect("no faults injected");
                decoded += 1;
                errors += outcome.is_logical_error() as usize;
                wall_latency_us += submitted_at.elapsed().as_secs_f64() * 1e6;
                modeled_latency_us += outcome.latency_ns / 1000.0;
                if decoded.is_multiple_of(100) {
                    println!(
                        "{decoded:>4} shots: running p_L = {:.4}, mean latency after last \
                         round = {:.2} us wall / {:.3} us modeled",
                        errors as f64 / decoded as f64,
                        wall_latency_us / decoded as f64,
                        modeled_latency_us / decoded as f64,
                    );
                }
            }
        });
    });

    let stats = stream.close();
    println!(
        "\ndone: {} shots submitted, {} decoded; every round was folded into the \
         running solution on arrival.",
        stats.submitted, stats.decoded
    );
}
