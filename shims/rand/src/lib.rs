//! Offline stand-in for the parts of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal API-compatible subset: [`RngCore`], the [`Rng`]
//! extension trait (only the methods the decoders and tests call), and
//! [`SeedableRng`] with the same SplitMix64-based `seed_from_u64` expansion
//! as upstream `rand`. Anything not exercised by this repository is
//! intentionally absent.

/// Low-level source of uniformly random words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p` (53-bit precision, like upstream).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        // 53 uniform mantissa bits in [0, 1)
        let uniform = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        uniform < p
    }

    /// Returns a uniform value in `[0, bound)`.
    fn gen_range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range_u64 bound must be positive");
        // widening-multiply rejection-free mapping (Lemire); the tiny bias is
        // irrelevant for test-data generation
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array for every generator in this workspace).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64, matching the
    /// upstream `rand` implementation of `seed_from_u64`.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 (public domain), as used by rand_core
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // weak mixing, enough to exercise the trait plumbing
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(42);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = Counter(7);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            assert!(rng.gen_range_u64(17) < 17);
        }
    }
}
