//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream generator
//! implementing the workspace [`rand`] shim traits.
//!
//! The core is the reference ChaCha block function with 8 rounds. The word
//! stream is *not* guaranteed to be bit-identical to the upstream
//! `rand_chacha` crate (which commits to a specific counter/nonce layout);
//! every consumer in this workspace only relies on determinism and on
//! statistical quality, both of which ChaCha8 provides.

use rand::{RngCore, SeedableRng};

/// The ChaCha constants: "expand 32-byte k".
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// ChaCha with 8 rounds, seeded by a 256-bit key.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Input block: constants, 8 key words, 64-bit counter, 64-bit nonce.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word of `block` (16 = exhausted).
    cursor: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // one double round: 4 column rounds + 4 diagonal rounds
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // increment the 64-bit block counter (words 12..14)
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // counter and nonce start at zero
        Self {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn identical_seeds_produce_identical_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be essentially uncorrelated");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }
}
