//! Offline stand-in for the subset of the `criterion` API used by the bench
//! targets in `crates/bench/benches/`.
//!
//! It is a plain timing harness: each benchmark closure is timed over
//! `sample_size` samples and the mean / min / max wall-clock time per
//! iteration is printed. There is no statistical analysis, HTML report, or
//! baseline comparison — the point is that `cargo bench` compiles and runs
//! the same bench sources offline that would drive real criterion when the
//! dependency is available.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Per-iteration timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // one warm-up call outside the measurement
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        self.report(&id.label, &bencher.samples);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        self.report(&id.label, &bencher.samples);
        self
    }

    fn report(&self, label: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{label}: no samples", self.name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().unwrap();
        let max = samples.iter().max().unwrap();
        println!(
            "{}/{label}: mean {:>12?}  min {:>12?}  max {:>12?}  ({} samples)",
            self.name,
            mean,
            min,
            max,
            samples.len()
        );
    }

    /// Finishes the group (printing happens eagerly; this is for API parity).
    pub fn finish(self) {
        let _ = self.criterion;
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 20,
        }
    }
}

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_a_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-self-test");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("count", 1), &1u32, |b, _| {
            b.iter(|| calls += 1)
        });
        group.finish();
        // warm-up + 3 samples
        assert_eq!(calls, 4);
    }
}
