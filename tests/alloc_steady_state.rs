//! Steady-state allocation audit of the accelerator hot path.
//!
//! The `DecoderBackend` contract says a reused backend must retain its
//! internal allocations: after warm-up, decoding must not touch the heap in
//! the dual phase. This binary installs a counting global allocator (the
//! counter is thread-local, so the harness's sibling test threads cannot
//! perturb a measurement) and checks two levels of the stack:
//!
//! 1. the raw accelerator + host driver loop — a decode that pre-matching
//!    resolves entirely in "hardware" performs **zero** allocations once the
//!    scratch buffers have warmed up;
//! 2. the full `MicroBlossomDecoder::decode` — the per-decode allocation
//!    count stabilizes to a constant (no unbounded growth) strictly below
//!    the cold-start cost. The residual steady-state allocations are the
//!    owned `DecodeOutcome`/`PerfectMatching` the API returns per call and
//!    the correction extraction's shortest-path queries, not the dual-phase
//!    solve.

use mb_accel::{AcceleratedDual, AcceleratorConfig, MicroBlossomAccelerator, PollEvent};
use mb_blossom::DualModule;
use mb_decoder::{DecoderBackend, MicroBlossomDecoder};
use mb_graph::codes::{CodeCapacityRepetitionCode, PhenomenologicalCode};
use mb_graph::syndrome::ErrorSampler;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
}

/// Counts heap acquisitions (alloc/alloc_zeroed/realloc) per thread.
struct CountingAlloc;

fn bump() {
    // ignore accesses during thread teardown
    let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOC_COUNT.with(|c| c.get())
}

/// One dual-phase-only decode: an isolated defect pair that pre-matching
/// absorbs without any CPU-side node materialization.
fn decode_prematched_pair(driver: &mut AcceleratedDual) {
    DualModule::reset(driver);
    driver.load_layer(0, &[3, 4]);
    loop {
        match driver.poll() {
            PollEvent::GrowLength(length) => driver.grow(length),
            PollEvent::Finished => break,
            other => panic!("unexpected event {other:?}"),
        }
    }
    assert_eq!(driver.remaining_prematches().len(), 1);
}

#[test]
fn accelerator_dual_phase_is_allocation_free_in_steady_state() {
    let graph = Arc::new(CodeCapacityRepetitionCode::new(9, 0.1).decoding_graph());
    let accel = MicroBlossomAccelerator::new(Arc::clone(&graph), AcceleratorConfig::default());
    let mut driver = AcceleratedDual::new(accel);
    // warm up the scratch buffers (stabilize table/frontier, pre-match
    // tables, staged syndrome, pre-match read-out)
    for _ in 0..3 {
        decode_prematched_pair(&mut driver);
    }
    let before = allocations();
    for _ in 0..5 {
        decode_prematched_pair(&mut driver);
    }
    assert_eq!(
        allocations() - before,
        0,
        "steady-state dual-phase decoding must not allocate"
    );
}

#[test]
fn full_decoder_steady_state_allocations_are_stable() {
    let graph = Arc::new(PhenomenologicalCode::rotated(3, 4, 0.04).decoding_graph());
    let sampler = ErrorSampler::new(&graph);
    let mut rng = ChaCha8Rng::seed_from_u64(12);
    let shot = loop {
        let shot = sampler.sample(&mut rng);
        if shot.syndrome.len() >= 4 {
            break shot;
        }
    };
    let mut decoder = MicroBlossomDecoder::full(Arc::clone(&graph), Some(3));
    let mut per_decode = Vec::with_capacity(10);
    for _ in 0..10 {
        let before = allocations();
        let outcome = decoder.decode(&shot.syndrome);
        per_decode.push(allocations() - before);
        assert!(outcome.latency_ns > 0.0);
    }
    let steady = per_decode[4];
    assert!(
        per_decode[4..].iter().all(|&n| n == steady),
        "per-decode allocation count must stabilize: {per_decode:?}"
    );
    assert!(
        steady < per_decode[0],
        "warm decodes must allocate strictly less than the first: {per_decode:?}"
    );
}
