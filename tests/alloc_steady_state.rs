//! Steady-state allocation audit of the accelerator hot path.
//!
//! The `DecoderBackend` contract says a reused backend must retain its
//! internal allocations: after warm-up, decoding must not touch the heap in
//! the dual phase. This binary installs a counting global allocator (the
//! counter is thread-local, so the harness's sibling test threads cannot
//! perturb a measurement) and checks two levels of the stack:
//!
//! 1. the raw accelerator + host driver loop — a decode that pre-matching
//!    resolves entirely in "hardware" performs **zero** allocations once the
//!    scratch buffers have warmed up;
//! 2. the full `MicroBlossomDecoder::decode` — the per-decode allocation
//!    count stabilizes to a constant (no unbounded growth) strictly below
//!    the cold-start cost. The residual steady-state allocations are the
//!    owned `DecodeOutcome`/`PerfectMatching` the API returns per call and
//!    the correction extraction's shortest-path queries, not the dual-phase
//!    solve;
//! 3. the windowed round-ingestion path — pushing defect-free rounds
//!    through a long [`mb_decoder::WindowedFeeder`] session allocates
//!    **zero** bytes on the session thread once the first windows have
//!    warmed the staging buffers, and with a periodic defect load the
//!    per-window allocation count settles to a constant (bounded-memory
//!    ingestion, observable at the allocator).

use mb_accel::{AcceleratedDual, AcceleratorConfig, MicroBlossomAccelerator, PollEvent};
use mb_blossom::DualModule;
use mb_decoder::{
    BackendSpec, DecodePool, DecoderBackend, MicroBlossomDecoder, WindowConfig, WindowedDecoder,
};
use mb_graph::codes::{CodeCapacityRepetitionCode, PhenomenologicalCode};
use mb_graph::syndrome::ErrorSampler;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
}

/// Counts heap acquisitions (alloc/alloc_zeroed/realloc) per thread.
struct CountingAlloc;

fn bump() {
    // ignore accesses during thread teardown
    let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOC_COUNT.with(|c| c.get())
}

/// One dual-phase-only decode: an isolated defect pair that pre-matching
/// absorbs without any CPU-side node materialization.
fn decode_prematched_pair(driver: &mut AcceleratedDual) {
    DualModule::reset(driver);
    driver.load_layer(0, &[3, 4]);
    loop {
        match driver.poll() {
            PollEvent::GrowLength(length) => driver.grow(length),
            PollEvent::Finished => break,
            other => panic!("unexpected event {other:?}"),
        }
    }
    assert_eq!(driver.remaining_prematches().len(), 1);
}

#[test]
fn accelerator_dual_phase_is_allocation_free_in_steady_state() {
    let graph = Arc::new(CodeCapacityRepetitionCode::new(9, 0.1).decoding_graph());
    let accel = MicroBlossomAccelerator::new(Arc::clone(&graph), AcceleratorConfig::default());
    let mut driver = AcceleratedDual::new(accel);
    // warm up the scratch buffers (stabilize table/frontier, pre-match
    // tables, staged syndrome, pre-match read-out)
    for _ in 0..3 {
        decode_prematched_pair(&mut driver);
    }
    let before = allocations();
    for _ in 0..5 {
        decode_prematched_pair(&mut driver);
    }
    assert_eq!(
        allocations() - before,
        0,
        "steady-state dual-phase decoding must not allocate"
    );
}

#[test]
fn full_decoder_steady_state_allocations_are_stable() {
    let graph = Arc::new(PhenomenologicalCode::rotated(3, 4, 0.04).decoding_graph());
    let sampler = ErrorSampler::new(&graph);
    let mut rng = ChaCha8Rng::seed_from_u64(12);
    let shot = loop {
        let shot = sampler.sample(&mut rng);
        if shot.syndrome.len() >= 4 {
            break shot;
        }
    };
    let mut decoder = MicroBlossomDecoder::full(Arc::clone(&graph), Some(3));
    let mut per_decode = Vec::with_capacity(10);
    for _ in 0..10 {
        let before = allocations();
        let outcome = decoder.decode(&shot.syndrome);
        per_decode.push(allocations() - before);
        assert!(outcome.latency_ns > 0.0);
    }
    let steady = per_decode[4];
    assert!(
        per_decode[4..].iter().all(|&n| n == steady),
        "per-decode allocation count must stabilize: {per_decode:?}"
    );
    assert!(
        steady < per_decode[0],
        "warm decodes must allocate strictly less than the first: {per_decode:?}"
    );
}

#[test]
fn windowed_ingestion_is_allocation_free_on_defect_free_rounds() {
    const ROUNDS: usize = 60;
    let graph = Arc::new(PhenomenologicalCode::rotated(3, ROUNDS, 0.01).decoding_graph());
    let decoder = WindowedDecoder::new(
        BackendSpec::micro_full(Some(3)),
        Arc::clone(&graph),
        WindowConfig::new(5, 2),
    )
    .with_pool(Arc::new(DecodePool::new(1)));
    let mut feeder = decoder.begin_shot(0);
    let mut per_round = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let before = allocations();
        feeder.push_round(&[]);
        per_round.push(allocations() - before);
    }
    // two window spans (commit + 2·overlap) of warmup, then nothing: empty
    // windows never become pool jobs, and the feeder's staging, pending and
    // fusion bookkeeping all run on retained capacity
    let warmup = 2 * (5 + 2 * 2);
    assert!(
        per_round[warmup..].iter().all(|&n| n == 0),
        "defect-free windowed ingestion must not allocate after warmup: {per_round:?}"
    );
    let outcome = feeder.finish();
    assert_eq!(outcome.committed_pairs, 0);
}

#[test]
fn windowed_ingestion_allocations_stabilize_under_defect_load() {
    const ROUNDS: usize = 48;
    const COMMIT: usize = 4;
    let graph = Arc::new(PhenomenologicalCode::rotated(3, ROUNDS, 0.01).decoding_graph());
    // one isolated defect in the middle of every commit region: each
    // interior window decodes an identical (time-translated) syndrome and
    // no matching reaches a seam
    let defect_of_layer: Vec<usize> = (0..ROUNDS)
        .map(|t| {
            (0..graph.vertex_count())
                .find(|&v| !graph.is_virtual(v) && graph.layer_of(v) == t)
                .expect("every layer has a regular vertex")
        })
        .collect();
    let pool = Arc::new(DecodePool::new(1));
    let decoder = WindowedDecoder::new(
        BackendSpec::micro_full(Some(3)),
        Arc::clone(&graph),
        WindowConfig::new(COMMIT, 1),
    )
    .with_pool(Arc::clone(&pool));
    let mut feeder = decoder.begin_shot(0);
    let mut per_window = Vec::with_capacity(ROUNDS / COMMIT);
    let mut current = 0u64;
    for (t, defect) in defect_of_layer.iter().enumerate() {
        let round: &[usize] = if t % COMMIT == COMMIT / 2 {
            std::slice::from_ref(defect)
        } else {
            &[]
        };
        let before = allocations();
        feeder.push_round(round);
        drop(feeder.take_committed());
        current += allocations() - before;
        if (t + 1) % COMMIT == 0 {
            per_window.push(current);
            current = 0;
        }
        // wait (untimed) until every submitted window's job has been
        // decoded, so the next push fuses it: pins every window's fusion
        // cost to the same chunk position regardless of machine load
        // (otherwise the pool's backpressure batches fusions arbitrarily)
        let submitted = (0..ROUNDS.div_ceil(COMMIT))
            .filter(|&k| (k * COMMIT + COMMIT + 1).min(ROUNDS) <= t + 1)
            .count() as u64;
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while pool.windows_decoded() < submitted && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
    }
    feeder.flush();
    // interior windows are structurally identical, so their ingestion +
    // fusion cost on the session thread is a constant: no growth with
    // stream position (the bounded-memory claim, measured in allocations)
    let interior = &per_window[3..per_window.len() - 1];
    let steady = interior[0];
    assert!(
        interior.iter().all(|&n| n == steady),
        "per-window allocation count must stabilize: {per_window:?}"
    );
}
