//! Cross-crate correctness experiment (paper §8.1 / §A.6): every decoder
//! configuration must be an *exact* MWPM decoder on every code family and
//! noise model, verified against the brute-force reference matcher.

use mb_blossom::exact::minimum_matching_weight;
use mb_blossom::SolverSerial;
use mb_decoder::{MicroBlossomConfig, MicroBlossomDecoder};
use mb_graph::codes::{
    CodeCapacityPlanarCode, CodeCapacityRepetitionCode, CodeCapacityRotatedCode,
    PhenomenologicalCode,
};
use mb_graph::syndrome::ErrorSampler;
use mb_graph::DecodingGraph;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// The QEC configurations exercised by the correctness experiment: code
/// family, distances, and physical error rates (a scaled-down version of the
/// §A.6 matrix so the suite stays fast).
fn configurations() -> Vec<(String, Arc<DecodingGraph>)> {
    let mut configs = Vec::new();
    for d in [3usize, 5, 7, 11] {
        for p in [0.01, 0.1, 0.3] {
            configs.push((
                format!("repetition d={d} p={p}"),
                Arc::new(CodeCapacityRepetitionCode::new(d, p).decoding_graph()),
            ));
        }
    }
    for d in [3usize, 5] {
        for p in [0.01, 0.05, 0.15] {
            configs.push((
                format!("rotated d={d} p={p}"),
                Arc::new(CodeCapacityRotatedCode::new(d, p).decoding_graph()),
            ));
            configs.push((
                format!("planar d={d} p={p}"),
                Arc::new(CodeCapacityPlanarCode::new(d, p).decoding_graph()),
            ));
        }
    }
    for (d, rounds, p) in [(3usize, 3usize, 0.02), (3, 5, 0.05), (5, 3, 0.01)] {
        configs.push((
            format!("phenomenological d={d} rounds={rounds} p={p}"),
            Arc::new(PhenomenologicalCode::rotated(d, rounds, p).decoding_graph()),
        ));
    }
    configs
}

fn check_decoder_exactness<F>(mut decode: F, graph: &Arc<DecodingGraph>, name: &str, shots: usize)
where
    F: FnMut(&mb_graph::SyndromePattern) -> mb_blossom::PerfectMatching,
{
    let sampler = ErrorSampler::new(graph);
    let mut rng = ChaCha8Rng::seed_from_u64(0xC0FFEE);
    for shot_index in 0..shots {
        let shot = sampler.sample(&mut rng);
        if shot.syndrome.len() > 12 {
            continue; // keep the brute-force reference tractable
        }
        let matching = decode(&shot.syndrome);
        assert!(
            matching.is_valid_for(&shot.syndrome.defects),
            "[{name}] shot {shot_index}: invalid matching for {:?}",
            shot.syndrome
        );
        assert!(
            matching.correction_matches_syndrome(graph, &shot.syndrome.defects),
            "[{name}] shot {shot_index}: correction does not reproduce the syndrome"
        );
        let optimum = minimum_matching_weight(graph, &shot.syndrome.defects)
            .expect("reference matcher must succeed");
        assert_eq!(
            matching.weight(graph),
            optimum,
            "[{name}] shot {shot_index}: suboptimal matching for {:?}",
            shot.syndrome
        );
    }
}

#[test]
fn software_solver_is_exact_on_every_configuration() {
    for (name, graph) in configurations() {
        let mut solver = SolverSerial::new(Arc::clone(&graph));
        check_decoder_exactness(|s| solver.solve(s), &graph, &name, 40);
    }
}

#[test]
fn micro_blossom_full_configuration_is_exact_on_every_configuration() {
    for (name, graph) in configurations() {
        let mut decoder = MicroBlossomDecoder::full(Arc::clone(&graph), None);
        check_decoder_exactness(
            |s| decoder.decode_matching(s).0,
            &graph,
            &format!("micro-full {name}"),
            30,
        );
    }
}

#[test]
fn micro_blossom_ablation_configurations_are_exact() {
    // the ablation configurations must not change the decoding result, only
    // the latency profile
    for (name, graph) in configurations().into_iter().step_by(3) {
        for (cname, config) in [
            (
                "dual-only",
                MicroBlossomConfig::parallel_dual_only(&graph, None),
            ),
            (
                "prematch",
                MicroBlossomConfig::with_parallel_primal(&graph, None),
            ),
        ] {
            let mut decoder = MicroBlossomDecoder::new(Arc::clone(&graph), config);
            check_decoder_exactness(
                |s| decoder.decode_matching(s).0,
                &graph,
                &format!("micro-{cname} {name}"),
                20,
            );
        }
    }
}
