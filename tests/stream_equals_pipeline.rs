//! The streaming front-end must be a pure *delivery* change: shots pushed
//! through a [`StreamDecoder`] — by several interleaved producer threads,
//! through a deliberately tiny (backpressuring) queue, on pools of 1/2/8
//! workers, for all three backends — decode to outcomes bit-identical to the
//! batch pipeline's `run_shots` on the same shot list, and seeded
//! submissions are bit-identical to `run_sampled` (same per-shot RNG).

use mb_decoder::pipeline::{shot_rng, DecodePool, ShardedPipeline, ShotOutcome};
use mb_decoder::stream::StreamDecoder;
use mb_decoder::BackendSpec;
use mb_graph::codes::{CodeCapacityRotatedCode, PhenomenologicalCode};
use mb_graph::syndrome::{ErrorSampler, Shot};
use mb_graph::DecodingGraph;
use std::sync::Arc;

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];
const SUBMITTERS: usize = 3;

fn graphs() -> Vec<(&'static str, Arc<DecodingGraph>)> {
    vec![
        (
            "rotated d=3 p=0.04",
            Arc::new(CodeCapacityRotatedCode::new(3, 0.04).decoding_graph()),
        ),
        (
            "phenomenological d=3 rounds=4 p=0.02",
            Arc::new(PhenomenologicalCode::rotated(3, 4, 0.02).decoding_graph()),
        ),
    ]
}

fn specs() -> Vec<BackendSpec> {
    vec![
        BackendSpec::micro_full(Some(3)),
        BackendSpec::Parity,
        BackendSpec::union_find(),
    ]
}

fn sample_shots(graph: &DecodingGraph, n: usize, seed: u64) -> Vec<Shot> {
    let sampler = ErrorSampler::new(graph);
    (0..n)
        .map(|i| {
            let mut rng = shot_rng(seed, i as u64);
            sampler.sample(&mut rng)
        })
        .collect()
}

/// Everything a decode *result* consists of, minus the submission index
/// (interleaved producers race for it) and the latency (compared separately,
/// only for deterministic backends).
fn decode_view(outcome: &ShotOutcome) -> (usize, u64, u64, bool) {
    (
        outcome.defects,
        outcome.decoded_observable,
        outcome.expected_observable,
        outcome.is_logical_error(),
    )
}

#[test]
fn interleaved_submitters_match_run_shots_under_backpressure() {
    let shots_per_graph = 72;
    for (name, graph) in graphs() {
        let shots = sample_shots(&graph, shots_per_graph, 0xFEED);
        for spec in specs() {
            let deterministic = spec.deterministic_latency();
            let reference = ShardedPipeline::new(spec.clone(), Arc::clone(&graph))
                .with_shards(2)
                .run_shots(&shots);
            for workers in WORKER_COUNTS {
                let stream = StreamDecoder::builder(spec.clone(), Arc::clone(&graph))
                    .pool(Arc::new(DecodePool::new(workers)))
                    .workers(workers)
                    // a queue far smaller than the shot count: blocking
                    // submits exercise the backpressure path throughout
                    .queue_capacity(2)
                    .start();
                let mut outcomes: Vec<(usize, ShotOutcome)> = std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..SUBMITTERS)
                        .map(|submitter| {
                            let stream = &stream;
                            let shots = &shots;
                            scope.spawn(move || {
                                // submit this producer's share with tickets
                                // in hand, then collect the outcomes
                                let tickets: Vec<_> = shots
                                    .iter()
                                    .enumerate()
                                    .filter(|(i, _)| i % SUBMITTERS == submitter)
                                    .map(|(i, shot)| (i, stream.submit(shot.clone()).unwrap()))
                                    .collect();
                                tickets
                                    .into_iter()
                                    .map(|(i, ticket)| (i, ticket.recv().unwrap()))
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("submitter thread panicked"))
                        .collect()
                });
                let stats = stream.close();
                assert_eq!(stats.submitted, shots.len() as u64, "{name}");
                assert_eq!(stats.decoded, shots.len() as u64, "{name}");
                outcomes.sort_by_key(|(i, _)| *i);
                assert_eq!(outcomes.len(), reference.len());
                for ((i, streamed), batch) in outcomes.iter().zip(&reference) {
                    assert_eq!(
                        decode_view(streamed),
                        decode_view(batch),
                        "{name} / {} / workers={workers} / shot {i}",
                        spec.name()
                    );
                    if deterministic {
                        assert_eq!(
                            (streamed.latency_ns, streamed.breakdown),
                            (batch.latency_ns, batch.breakdown),
                            "{name} / {} / workers={workers} / shot {i}",
                            spec.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn seeded_streams_are_bit_identical_to_run_sampled() {
    let shots = 60;
    let seed = 0xA17;
    for (name, graph) in graphs() {
        for spec in specs() {
            let deterministic = spec.deterministic_latency();
            let reference = ShardedPipeline::new(spec.clone(), Arc::clone(&graph))
                .with_shards(1)
                .run_sampled(shots, seed);
            for workers in WORKER_COUNTS {
                let stream = StreamDecoder::builder(spec.clone(), Arc::clone(&graph))
                    .pool(Arc::new(DecodePool::new(workers)))
                    .workers(workers)
                    .start();
                // a single producer: submission indices align with the batch
                // shot indices, so the full record must match
                let tickets: Vec<_> = (0..shots)
                    .map(|_| stream.submit_seeded(seed).unwrap())
                    .collect();
                let outcomes: Vec<ShotOutcome> = tickets
                    .into_iter()
                    .map(|ticket| ticket.recv().unwrap())
                    .collect();
                stream.close();
                if deterministic {
                    assert_eq!(
                        outcomes,
                        reference,
                        "{name} / {} / workers={workers}",
                        spec.name()
                    );
                } else {
                    let got: Vec<_> = outcomes
                        .iter()
                        .map(|o| (o.shot_index, decode_view(o)))
                        .collect();
                    let want: Vec<_> = reference
                        .iter()
                        .map(|o| (o.shot_index, decode_view(o)))
                        .collect();
                    assert_eq!(got, want, "{name} / {} / workers={workers}", spec.name());
                }
            }
        }
    }
}

#[test]
fn round_fed_streams_match_run_shots() {
    // producers feed each shot round by round (the §6 ingestion path) while
    // other producers interleave their own shots; results still equal batch
    let graph = Arc::new(PhenomenologicalCode::rotated(3, 5, 0.02).decoding_graph());
    let shots = sample_shots(&graph, 36, 0xC0DE);
    let spec = BackendSpec::micro_full(Some(3));
    let reference = ShardedPipeline::new(spec.clone(), Arc::clone(&graph)).run_shots(&shots);
    for workers in WORKER_COUNTS {
        let stream = StreamDecoder::builder(spec.clone(), Arc::clone(&graph))
            .pool(Arc::new(DecodePool::new(workers)))
            .workers(workers)
            .queue_capacity(4)
            .start();
        let mut outcomes: Vec<(usize, ShotOutcome)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..SUBMITTERS)
                .map(|submitter| {
                    let stream = &stream;
                    let shots = &shots;
                    let graph = &graph;
                    scope.spawn(move || {
                        shots
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| i % SUBMITTERS == submitter)
                            .map(|(i, shot)| {
                                let mut feeder = stream.begin_shot(shot.observable).unwrap();
                                for round in shot.syndrome.split_by_layer(graph) {
                                    feeder.push_round(&round).unwrap();
                                }
                                (i, feeder.finish().recv().unwrap())
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("submitter thread panicked"))
                .collect()
        });
        outcomes.sort_by_key(|(i, _)| *i);
        for ((i, streamed), batch) in outcomes.iter().zip(&reference) {
            assert_eq!(
                (
                    decode_view(streamed),
                    streamed.latency_ns,
                    streamed.breakdown
                ),
                (decode_view(batch), batch.latency_ns, batch.breakdown),
                "workers={workers} / shot {i}"
            );
        }
        stream.close();
    }
}
