//! Chaos harness: deterministic fault injection against the decode service
//! (`cargo test --features chaos --test chaos_recovery`).
//!
//! The [`FaultPlan`] schedules are pure functions of their seeds, so every
//! test here can diff a faulty run against a fault-free one shot by shot:
//! worker panics must cost exactly the shots they hit (typed
//! [`DecodeError::WorkerPanic`], capacity self-heals via respawn), round
//! faults must bounce off the feeders' typed validation without deadlocking
//! any worker-count/backend combination, deadline misses must degrade
//! rather than stall, and ticket-drop storms must never leak outcome cells.

use mb_decoder::pipeline::{shot_rng, DecodePool, ShardedPipeline};
use mb_decoder::stream::StreamDecoder;
use mb_decoder::{
    BackendSpec, DeadlinePolicy, DecodeError, FaultPlan, MicroBlossomConfig, RoundFault,
    TrySubmitError,
};
use mb_graph::codes::PhenomenologicalCode;
use mb_graph::syndrome::{ErrorSampler, Shot};
use mb_graph::DecodingGraph;
use std::sync::Arc;
use std::time::Duration;

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn graph() -> Arc<DecodingGraph> {
    Arc::new(PhenomenologicalCode::rotated(3, 4, 0.03).decoding_graph())
}

fn specs(graph: &DecodingGraph) -> Vec<(&'static str, BackendSpec)> {
    vec![
        ("micro-full", BackendSpec::micro_full(Some(3))),
        (
            "micro-nopredecoder",
            BackendSpec::Micro(MicroBlossomConfig::full(graph, Some(3)).without_predecoder()),
        ),
        ("union-find", BackendSpec::union_find()),
    ]
}

fn sample_shots(graph: &DecodingGraph, n: usize, seed: u64) -> Vec<Shot> {
    let sampler = ErrorSampler::new(graph);
    (0..n)
        .map(|i| {
            let mut rng = shot_rng(seed, i as u64);
            sampler.sample(&mut rng)
        })
        .collect()
}

#[test]
fn pool_capacity_recovers_after_a_panic_storm() {
    // K scheduled panics against a batch job on a single worker (one
    // worker decodes every shot, so all K fire deterministically): exactly
    // K shots fail typed, and full capacity survives for the next job
    let graph = graph();
    let shots = 120usize;
    let panics = 3usize;
    let plan = Arc::new(
        FaultPlan::new()
            .panic_worker(0, 3)
            .panic_worker(0, 10)
            .panic_worker(0, 17),
    );
    let pool = Arc::new(DecodePool::new_with_faults(1, plan));
    let pipeline = ShardedPipeline::new(BackendSpec::micro_full(Some(3)), Arc::clone(&graph))
        .with_pool(Arc::clone(&pool))
        .with_shards(1);
    let reference = ShardedPipeline::new(BackendSpec::micro_full(Some(3)), Arc::clone(&graph))
        .with_shards(1)
        .run_sampled(shots, 7);
    let results = pipeline.try_run_sampled(shots, 7);
    let mut failed = 0usize;
    for (i, result) in results.iter().enumerate() {
        match result {
            Ok(outcome) => assert_eq!(
                outcome, &reference[i],
                "shot {i} diverged from the fault-free run"
            ),
            Err(DecodeError::WorkerPanic { message }) => {
                assert!(message.contains("chaos: injected panic"), "{message}");
                failed += 1;
            }
            Err(other) => panic!("unexpected error for shot {i}: {other}"),
        }
    }
    // the one worker decodes all 120 shots, so every scheduled panic fires
    assert_eq!(failed, panics);
    assert_eq!(pool.worker_panics(), panics as u64);
    assert!(pool.worker_respawns() >= panics as u64);
    // capacity self-healed: the plan's panics are spent, everything decodes
    let again = pipeline.try_run_sampled(shots, 7);
    assert!(again.iter().all(Result::is_ok));
    assert_eq!(pool.worker_panics(), panics as u64);
}

#[test]
fn stream_panic_storm_spares_unaffected_shots() {
    let graph = graph();
    let shots = sample_shots(&graph, 80, 0xF00D);
    let spec = BackendSpec::micro_full(Some(3));
    let reference = ShardedPipeline::new(spec.clone(), Arc::clone(&graph)).run_shots(&shots);
    for workers in [1usize, 2] {
        // one low-sequence panic per worker: by pigeonhole some worker
        // decodes at least half the shots, so at least one panic fires no
        // matter how the queue chunks distribute
        let mut plan = FaultPlan::new();
        for w in 0..workers {
            plan = plan.panic_worker(w, 3);
        }
        let plan = Arc::new(plan);
        let pool = Arc::new(DecodePool::new(workers));
        let stream = StreamDecoder::builder(spec.clone(), Arc::clone(&graph))
            .pool(Arc::clone(&pool))
            .workers(workers)
            .queue_capacity(16)
            .fault_plan(Arc::clone(&plan))
            .start();
        let tickets: Vec<_> = shots
            .iter()
            .cloned()
            .map(|s| stream.submit(s).unwrap())
            .collect();
        let mut failed = 0u64;
        for (i, ticket) in tickets.into_iter().enumerate() {
            match ticket.recv() {
                Ok(outcome) => assert_eq!(
                    outcome, reference[i],
                    "workers={workers}: shot {i} diverged from the fault-free run"
                ),
                Err(DecodeError::WorkerPanic { message }) => {
                    assert!(message.contains("chaos: injected panic"), "{message}");
                    failed += 1;
                }
                Err(other) => panic!("workers={workers}: unexpected error {other}"),
            }
        }
        let stats = stream.close();
        assert_eq!(stats.worker_panics, failed, "workers={workers}");
        assert_eq!(stats.decoded + failed, shots.len() as u64);
        assert!(
            (1..=workers as u64).contains(&failed),
            "workers={workers}: {failed} panics fired"
        );
        // every panic respawned a backend; the pool serves the next job at
        // full capacity
        assert!(pool.worker_respawns() >= failed);
        let pipeline = ShardedPipeline::new(BackendSpec::union_find(), Arc::clone(&graph))
            .with_pool(pool)
            .with_shards(workers);
        assert_eq!(pipeline.run_sampled(10, 1).len(), 10);
    }
}

#[test]
fn round_fault_storms_never_deadlock() {
    // drop/corrupt/duplicate/reorder storms across worker counts and
    // backends: every faulted delivery either lands or bounces off the
    // feeders' typed validation, every ticket resolves, and close() drains
    let graph = graph();
    let shots = sample_shots(&graph, 24, 0x5707);
    let num_layers = graph.num_layers();
    let faults = [
        RoundFault::Drop,
        RoundFault::Corrupt,
        RoundFault::Duplicate,
        RoundFault::Reorder,
    ];
    for workers in WORKER_COUNTS {
        for (name, spec) in specs(&graph) {
            // every feeder gets a fault on a rotating round, cycling
            // through all four fault kinds
            let mut plan = FaultPlan::new();
            for (i, fault) in (0..shots.len()).zip(faults.iter().cycle()) {
                plan = plan.round_fault(i as u64, i % num_layers, *fault);
            }
            let stream = StreamDecoder::builder(spec, Arc::clone(&graph))
                .pool(Arc::new(DecodePool::new(workers)))
                .workers(workers)
                .queue_capacity(32)
                .fault_plan(Arc::new(plan))
                .start();
            let tickets: Vec<_> = shots
                .iter()
                .map(|shot| {
                    let mut feeder = stream.begin_shot(shot.observable).unwrap();
                    for round in shot.syndrome.split_by_layer(&graph) {
                        // the caller's payload is valid; the *injected*
                        // mutation is what gets validated/dropped inside
                        feeder.push_round(&round).unwrap();
                    }
                    feeder.finish()
                })
                .collect();
            for (i, ticket) in tickets.into_iter().enumerate() {
                let outcome = ticket
                    .recv()
                    .unwrap_or_else(|e| panic!("{name} workers={workers} shot {i}: {e}"));
                assert_eq!(outcome.shot_index, i);
            }
            let stats = stream.close();
            assert_eq!(
                stats.decoded,
                shots.len() as u64,
                "{name} workers={workers}"
            );
        }
    }
}

#[test]
fn deadline_misses_degrade_without_stalling() {
    // a delayed worker plus an aggressive degrade deadline: every shot
    // resolves (degraded or on time), nothing stalls behind the sleeper
    let graph = graph();
    let shots = sample_shots(&graph, 40, 0xDEAD);
    let uf_reference =
        ShardedPipeline::new(BackendSpec::union_find(), Arc::clone(&graph)).run_shots(&shots);
    let plan = Arc::new(
        FaultPlan::new()
            .delay_worker(0, 2, Duration::from_millis(5))
            .delay_worker(1, 3, Duration::from_millis(5)),
    );
    let stream = StreamDecoder::builder(BackendSpec::micro_full(Some(3)), Arc::clone(&graph))
        .pool(Arc::new(DecodePool::new(2)))
        .workers(2)
        .queue_capacity(8)
        .fault_plan(plan)
        .start();
    let policy = DeadlinePolicy::degrade_after(Duration::ZERO);
    let tickets: Vec<_> = shots
        .iter()
        .cloned()
        .map(|s| stream.submit_with_deadline(s, policy).unwrap())
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let outcome = ticket.recv().unwrap();
        assert!(outcome.degraded, "shot {i} must degrade");
        assert_eq!(
            outcome.decoded_observable, uf_reference[i].decoded_observable,
            "shot {i}: degraded decode must equal the union-find fallback"
        );
    }
    let stats = stream.close();
    assert_eq!(stats.decoded, shots.len() as u64);
    assert_eq!(stats.degraded_shots, shots.len() as u64);
    assert_eq!(stats.deadline_misses, shots.len() as u64);
}

#[test]
fn ticket_drop_storms_never_leak_under_panics() {
    // fire-and-forget producers that also suffer a panic storm: abandoned
    // outcome cells are reclaimed, close() balances, the stream never hangs
    let graph = graph();
    let shots = 60usize;
    for workers in WORKER_COUNTS {
        let plan = Arc::new(FaultPlan::seeded(0xD50B + workers as u64, workers, 3, 15));
        let stream = StreamDecoder::builder(BackendSpec::micro_full(Some(3)), Arc::clone(&graph))
            .pool(Arc::new(DecodePool::new(workers)))
            .workers(workers)
            .queue_capacity(8)
            .fault_plan(plan)
            .start();
        for _ in 0..shots {
            drop(stream.submit_seeded(9).unwrap());
        }
        let stats = stream.close();
        assert_eq!(stats.submitted, shots as u64, "workers={workers}");
        assert_eq!(
            stats.decoded + stats.worker_panics,
            shots as u64,
            "workers={workers}: every dropped shot either decoded or failed typed"
        );
    }
}

#[test]
fn forced_queue_full_hands_the_shot_back() {
    let graph = graph();
    let shots = sample_shots(&graph, 3, 0x0F11);
    let plan = Arc::new(FaultPlan::new().force_queue_full(1));
    let stream = StreamDecoder::builder(BackendSpec::micro_full(Some(3)), Arc::clone(&graph))
        .pool(Arc::new(DecodePool::new(1)))
        .workers(1)
        .queue_capacity(64)
        .fault_plan(plan)
        .start();
    let first = stream.try_submit(shots[0].clone());
    assert!(first.is_ok(), "submit 0 is not scheduled to fail");
    // submit 1 is forced full despite the deep queue; the shot comes back
    let stolen = match stream.try_submit(shots[1].clone()) {
        Err(TrySubmitError::Full(shot)) => shot,
        other => panic!("expected a forced queue-full, got {other:?}"),
    };
    assert_eq!(stolen.observable, shots[1].observable);
    // blocking submit ignores the try-path injection and queues it
    let ticket = stream.submit(stolen).unwrap();
    ticket.recv().unwrap();
    let stats = stream.close();
    assert_eq!(stats.decoded, 2);
}
