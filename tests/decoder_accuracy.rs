//! Accuracy relations between the decoders (the premise of Figure 11):
//! exact MWPM decoders agree with each other, and the Union-Find
//! approximation never beats them while all decoders suppress errors as the
//! code distance grows.

use mb_decoder::{evaluate_decoder, BackendSpec};
use mb_graph::codes::CodeCapacityRotatedCode;
use std::sync::Arc;

#[test]
fn exact_decoders_have_identical_weight_behaviour() {
    let graph = Arc::new(CodeCapacityRotatedCode::new(5, 0.06).decoding_graph());
    let shots = 400;
    let parity_eval = evaluate_decoder(&BackendSpec::Parity, &graph, shots, 31);
    let micro_eval = evaluate_decoder(&BackendSpec::micro_full(Some(5)), &graph, shots, 31);
    let delta = (parity_eval.logical_error_rate() - micro_eval.logical_error_rate()).abs();
    assert!(
        delta <= 0.02,
        "exact decoders should agree up to equal-weight ties: {} vs {}",
        parity_eval.logical_error_rate(),
        micro_eval.logical_error_rate()
    );
}

#[test]
fn union_find_never_beats_exact_mwpm() {
    for (d, p) in [(3usize, 0.08), (5, 0.08)] {
        let graph = Arc::new(CodeCapacityRotatedCode::new(d, p).decoding_graph());
        let shots = 1000;
        let mwpm_eval = evaluate_decoder(&BackendSpec::Parity, &graph, shots, 5);
        let uf_eval = evaluate_decoder(&BackendSpec::union_find(), &graph, shots, 5);
        assert!(
            uf_eval.logical_error_rate() + 0.01 >= mwpm_eval.logical_error_rate(),
            "d={d}: UF {} unexpectedly beats MWPM {}",
            uf_eval.logical_error_rate(),
            mwpm_eval.logical_error_rate()
        );
    }
}

#[test]
fn larger_distance_suppresses_logical_errors_below_threshold() {
    let p = 0.02; // well below the surface-code threshold
    let shots = 1500;
    let mut rates = Vec::new();
    for d in [3usize, 5] {
        let graph = Arc::new(CodeCapacityRotatedCode::new(d, p).decoding_graph());
        let eval = evaluate_decoder(&BackendSpec::micro_full(Some(d)), &graph, shots, 13);
        rates.push(eval.logical_error_rate());
    }
    assert!(
        rates[1] <= rates[0],
        "logical error rate should not grow with distance below threshold: {rates:?}"
    );
}
