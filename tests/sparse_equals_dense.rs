//! Differential property test of the sparse active-set accelerator.
//!
//! The accelerator's sweeps (stabilization, pre-matching, convergecast)
//! fold over an explicit active region instead of the full PU arrays. The
//! dense full-array fold is retained behind
//! `AcceleratorConfig::dense_reference`; this seeded-loop property test
//! (shims/rand style) drives both against random syndromes and requires
//! **bit-identical** `DecodeOutcome`s — matching, observable, latency
//! counters, everything — across:
//!
//! * code distances d ∈ {3, 5, 9},
//! * decoder configurations with and without pre-matching (and with
//!   round-wise stream fusion),
//! * batch decoding vs round-wise ingestion,
//! * serial decoding vs the work-stealing pool at several worker counts.

use mb_decoder::pipeline::ShardedPipeline;
use mb_decoder::{BackendSpec, DecoderBackend, MicroBlossomConfig, MicroBlossomDecoder};
use mb_graph::codes::PhenomenologicalCode;
use mb_graph::syndrome::ErrorSampler;
use mb_graph::DecodingGraph;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn graph_for(d: usize) -> Arc<DecodingGraph> {
    // keep the number of rounds bounded so d = 9 stays fast while still
    // exercising multi-layer fusion
    let rounds = d.min(4);
    Arc::new(PhenomenologicalCode::rotated(d, rounds, 0.02).decoding_graph())
}

fn configs(graph: &DecodingGraph, d: usize) -> Vec<MicroBlossomConfig> {
    vec![
        MicroBlossomConfig::parallel_dual_only(graph, Some(d)),
        MicroBlossomConfig::with_parallel_primal(graph, Some(d)),
        MicroBlossomConfig::full(graph, Some(d)),
    ]
}

#[test]
fn sparse_decode_is_bit_identical_to_dense_reference() {
    for d in [3usize, 5, 9] {
        let graph = graph_for(d);
        let sampler = ErrorSampler::new(&graph);
        let shots = if d == 9 { 25 } else { 60 };
        for (c, config) in configs(&graph, d).into_iter().enumerate() {
            let mut sparse = MicroBlossomDecoder::new(Arc::clone(&graph), config.clone());
            let mut dense =
                MicroBlossomDecoder::new(Arc::clone(&graph), config.with_dense_reference());
            let mut rng = ChaCha8Rng::seed_from_u64(0xD5 + 31 * d as u64 + c as u64);
            for shot_index in 0..shots {
                let shot = sampler.sample(&mut rng);
                let got = sparse.decode(&shot.syndrome);
                let want = dense.decode(&shot.syndrome);
                assert_eq!(
                    got, want,
                    "d={d} config={c} shot={shot_index} syndrome={:?}",
                    shot.syndrome
                );
            }
        }
    }
}

#[test]
fn sparse_round_ingestion_is_bit_identical_to_dense_batch() {
    for d in [3usize, 5] {
        let graph = graph_for(d);
        let sampler = ErrorSampler::new(&graph);
        let config = MicroBlossomConfig::full(&graph, Some(d));
        let mut sparse = MicroBlossomDecoder::new(Arc::clone(&graph), config.clone());
        let mut dense = MicroBlossomDecoder::new(Arc::clone(&graph), config.with_dense_reference());
        assert!(sparse.supports_round_ingestion());
        let mut rng = ChaCha8Rng::seed_from_u64(0xF00D + d as u64);
        for _ in 0..40 {
            let shot = sampler.sample(&mut rng);
            let want = dense.decode(&shot.syndrome);
            let layers = shot.syndrome.split_by_layer(&graph);
            let last = layers.len() - 1;
            sparse.begin_rounds();
            for (t, defects) in layers[..last].iter().enumerate() {
                sparse.ingest_round(t, defects);
            }
            let got = sparse.finish_rounds(last, &layers[last]);
            assert_eq!(got, want, "d={d} syndrome={:?}", shot.syndrome);
        }
    }
}

#[test]
fn sparse_pool_results_match_dense_for_any_worker_count() {
    let d = 5;
    let graph = graph_for(d);
    let shots = 80;
    let seed = 0xACE5;
    let dense_spec =
        BackendSpec::Micro(MicroBlossomConfig::full(&graph, Some(d)).with_dense_reference());
    let reference = ShardedPipeline::new(dense_spec, Arc::clone(&graph))
        .with_shards(1)
        .run_sampled(shots, seed);
    for workers in [1usize, 2, 8] {
        let sparse_spec = BackendSpec::micro_full(Some(d));
        let outcomes = ShardedPipeline::new(sparse_spec, Arc::clone(&graph))
            .with_shards(workers)
            .run_sampled(shots, seed);
        assert_eq!(
            outcomes, reference,
            "sparse pool with {workers} workers diverged from the dense reference"
        );
    }
}
