//! Trace-corpus subsystem: round-trip fidelity, robustness to damaged
//! files, and deterministic replay.
//!
//! * **Round trip** (property): corpora over randomized codes, round
//!   counts, tilts and defect densities encode → decode to exactly the
//!   structure that was written, through both the in-memory codec and the
//!   streaming [`CorpusWriter`].
//! * **Robustness** (property): truncating an encoded corpus at any
//!   prefix length, flipping any single byte, or rewriting the version
//!   yields a typed [`CorpusError`] — never a panic, never a silently
//!   wrong corpus.
//! * **Differential replay**: one corpus replays bit-identically across
//!   3 backends × 1/2/8-worker pools × batch/stream/windowed ingestion,
//!   and the batch replay equals the original in-process sampled run at
//!   the same seed — the byte format is a faithful transport for the
//!   pipeline's exact workload.
//! * **Golden fixture**: the committed `golden_d3.mbtc` (also exercised
//!   by CI's record/replay smoke) still loads, matches its recorded
//!   provenance, and replays deterministically — guarding the on-disk
//!   format against accidental version drift.

use mb_decoder::pipeline::{DecodePool, ShardedPipeline};
use mb_decoder::replay::{record_circuit_run, record_tilted_run, replay_corpus, ReplayMode};
use mb_decoder::{BackendSpec, ShotOutcome, WindowConfig};
use mb_graph::circuit::{CircuitLevelCode, MechanismTilt};
use mb_graph::corpus::{graph_fingerprint, CorpusError, CorpusWriter, TraceCorpus};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// The decode triple that must be invariant across every replay
/// configuration (latency is wall-clock for some backends).
fn decode_key(o: &ShotOutcome) -> (usize, usize, u64, u64) {
    (
        o.shot_index,
        o.defects,
        o.decoded_observable,
        o.expected_observable,
    )
}

#[test]
fn round_trips_randomized_corpora_exactly() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x20B5);
    for case in 0..12 {
        let d = [3, 5][case % 2];
        let rounds = 2 + case % 4;
        let p = [0.004, 0.02, 0.08][case % 3];
        let circuit = Arc::new(CircuitLevelCode::rotated(d, rounds, p).compile());
        let shots = 1 + rng.gen_range_u64(40) as usize;
        let seed = rng.next_u64();
        let corpus = if case % 3 == 0 {
            let tilt = MechanismTilt::uniform(&circuit, 1.5 + case as f64);
            record_tilted_run(&circuit, &tilt, shots, seed)
        } else {
            record_circuit_run(&circuit, shots, seed)
        };
        let decoded = TraceCorpus::decode(&corpus.encode()).expect("round trip");
        assert_eq!(corpus, decoded, "case {case}: corpus survives the codec");
        assert!(decoded.validate_for(circuit.graph()).is_ok());
    }
}

#[test]
fn streaming_writer_matches_in_memory_encoder() {
    let circuit = Arc::new(CircuitLevelCode::rotated(3, 4, 0.03).compile());
    let corpus = record_circuit_run(&circuit, 25, 77);
    let mut writer = CorpusWriter::new(Vec::new(), corpus.header.clone()).expect("header writes");
    for record in &corpus.records {
        writer.push(record).expect("record writes");
    }
    assert_eq!(writer.records_written(), 25);
    let streamed = writer.finish().expect("trailer writes");
    assert_eq!(streamed, corpus.encode(), "one byte stream, two writers");
}

#[test]
fn damaged_corpora_fail_typed_never_panic() {
    let circuit = Arc::new(CircuitLevelCode::rotated(3, 3, 0.05).compile());
    let corpus = record_circuit_run(&circuit, 12, 3);
    let bytes = corpus.encode();

    // every strict prefix is truncated
    for len in 0..bytes.len() {
        let result = TraceCorpus::decode(&bytes[..len]);
        assert!(result.is_err(), "prefix of {len} bytes must not decode");
    }
    // every single-byte corruption is detected (structurally or by the
    // trailer checksum)
    for index in 0..bytes.len() {
        let mut corrupted = bytes.clone();
        corrupted[index] ^= 0x41;
        let result = TraceCorpus::decode(&corrupted);
        assert!(result.is_err(), "flip at byte {index} must not decode");
    }
    // wrong magic and unsupported version are reported as such
    let mut wrong_magic = bytes.clone();
    wrong_magic[0] = b'X';
    assert!(matches!(
        TraceCorpus::decode(&wrong_magic),
        Err(CorpusError::BadMagic)
    ));
    let mut future_version = bytes.clone();
    future_version[4] = 0xFF;
    assert!(matches!(
        TraceCorpus::decode(&future_version),
        Err(CorpusError::UnsupportedVersion { .. })
    ));
    assert!(matches!(
        TraceCorpus::decode(&[]),
        Err(CorpusError::Truncated { .. })
    ));
}

#[test]
fn corpus_for_one_graph_refuses_another() {
    let recorded = Arc::new(CircuitLevelCode::rotated(3, 3, 0.02).compile());
    let other = Arc::new(CircuitLevelCode::rotated(5, 3, 0.02).compile());
    let corpus = record_circuit_run(&recorded, 6, 1);
    let error = replay_corpus(
        &BackendSpec::Parity,
        other.graph(),
        &corpus,
        ReplayMode::Batch,
        1,
        None,
    )
    .expect_err("wrong graph must be rejected");
    assert!(matches!(error, CorpusError::GraphMismatch { .. }));
    assert_ne!(
        graph_fingerprint(recorded.graph()),
        graph_fingerprint(other.graph())
    );
}

#[test]
fn one_corpus_replays_identically_across_backends_workers_and_modes() {
    let d = 3;
    let circuit = Arc::new(CircuitLevelCode::rotated(d, 6, 0.02).compile());
    let graph = circuit.graph();
    let shots = 96;
    let seed = 0xD1FF;
    let corpus = record_circuit_run(&circuit, shots, seed);

    for spec in [
        BackendSpec::micro_full(Some(d)),
        BackendSpec::Parity,
        BackendSpec::union_find(),
    ] {
        // the in-process sampled run the corpus was recorded from
        let original = ShardedPipeline::new(spec.clone(), Arc::clone(graph))
            .run_circuit_sampled(&circuit, shots, seed);
        let reference = replay_corpus(&spec, graph, &corpus, ReplayMode::Batch, 1, None)
            .expect("replay batch x1");
        assert_eq!(original.len(), reference.len());
        for (a, b) in original.iter().zip(&reference) {
            assert_eq!(
                decode_key(a),
                decode_key(b),
                "{}: replay equals the original sampled run at equal seed",
                spec.name()
            );
        }
        let windowed = !matches!(spec, BackendSpec::UnionFind(_));
        let mut windowed_reference: Option<Vec<ShotOutcome>> = None;
        for workers in [1usize, 2, 8] {
            let pool = Arc::new(DecodePool::new(workers));
            let batch = replay_corpus(
                &spec,
                graph,
                &corpus,
                ReplayMode::Batch,
                workers,
                Some(Arc::clone(&pool)),
            )
            .expect("batch replay");
            let stream = replay_corpus(
                &spec,
                graph,
                &corpus,
                ReplayMode::Stream,
                workers,
                Some(Arc::clone(&pool)),
            )
            .expect("stream replay");
            for (r, outcomes) in [("batch", &batch), ("stream", &stream)] {
                for (a, b) in reference.iter().zip(outcomes.iter()) {
                    assert_eq!(
                        decode_key(a),
                        decode_key(b),
                        "{} {r} x{workers} diverged",
                        spec.name()
                    );
                }
            }
            if spec.deterministic_latency() {
                // modeled-latency backends must agree on the *entire*
                // outcome, latency included, for any worker count
                assert_eq!(reference, batch, "{} full equality", spec.name());
            }
            if windowed {
                let outcomes = replay_corpus(
                    &spec,
                    graph,
                    &corpus,
                    ReplayMode::Windowed(WindowConfig::new(3, 1)),
                    workers,
                    Some(pool),
                )
                .expect("windowed replay");
                // windowed decoding equals batch only up to MWPM seam
                // degeneracy, but must be deterministic across workers
                match &windowed_reference {
                    None => windowed_reference = Some(outcomes),
                    Some(reference) => {
                        for (a, b) in reference.iter().zip(&outcomes) {
                            assert_eq!(
                                decode_key(a),
                                decode_key(b),
                                "{} windowed x{workers} diverged",
                                spec.name()
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn golden_fixture_still_loads_and_replays() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../bench/fixtures/golden_d3.mbtc"
    );
    let corpus = TraceCorpus::load(path).expect("committed golden corpus decodes");
    let meta = &corpus.header.provenance;
    let d = meta.get("d").and_then(|v| v.as_u64()).expect("d recorded") as usize;
    let rounds = meta
        .get("rounds")
        .and_then(|v| v.as_u64())
        .expect("rounds recorded") as usize;
    let p = meta.get("p").and_then(|v| v.as_f64()).expect("p recorded");
    let circuit = Arc::new(CircuitLevelCode::rotated(d, rounds, p).compile());
    assert_eq!(
        corpus.header.graph_fingerprint,
        graph_fingerprint(circuit.graph()),
        "provenance rebuilds the exact graph the fixture was recorded on"
    );
    assert_eq!(
        corpus.records.len() as u64,
        meta.get("shots").and_then(|v| v.as_u64()).expect("shots"),
        "record count matches provenance"
    );
    let spec = BackendSpec::micro_full(Some(d));
    let one = replay_corpus(&spec, circuit.graph(), &corpus, ReplayMode::Batch, 1, None)
        .expect("fixture replays");
    let eight = replay_corpus(&spec, circuit.graph(), &corpus, ReplayMode::Batch, 8, None)
        .expect("fixture replays sharded");
    assert_eq!(one, eight, "fixture replay is worker-count invariant");
    // the fixture was recorded with the pipeline's seeded sampler: the
    // same seed regenerates it byte for byte
    let seed = meta.get("seed").and_then(|v| v.as_u64()).expect("seed");
    let regenerated = record_circuit_run(&circuit, corpus.records.len(), seed);
    assert_eq!(
        regenerated.records, corpus.records,
        "fixture records regenerate from their recorded seed"
    );
}
