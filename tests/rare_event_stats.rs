//! Statistical validity of the rare-event estimators.
//!
//! At a small distance and physical rate where direct Monte-Carlo is
//! cheap, all three estimators measure the same logical error rate, so
//! they must agree within their own confidence bounds:
//!
//! * the **null tilt** (`q = p`) has likelihood-ratio weights that are
//!   *exactly* one — same floats, not approximately — and its importance
//!   estimate reproduces the direct estimate on the same shot stream;
//! * under a real tilt the LR weights are **unbiased**: their sample mean
//!   over tilted shots converges to 1 (`E_q[p/q] = 1`);
//! * importance sampling and multilevel splitting each agree with direct
//!   Monte-Carlo within combined standard errors (5σ gate on seeded,
//!   deterministic runs);
//! * the splitting estimator's exact Poisson-binomial level weights
//!   conserve probability mass with the reported tail bound.

use mb_decoder::pipeline::shot_rng;
use mb_decoder::rare::{direct_estimate, importance_estimate, splitting_estimate, SplittingConfig};
use mb_decoder::BackendSpec;
use mb_graph::circuit::{CircuitLevelCode, MechanismTilt, TiltedCircuitSampler};
use std::sync::Arc;

#[test]
fn null_tilt_importance_equals_direct_monte_carlo() {
    let circuit = Arc::new(CircuitLevelCode::rotated(3, 3, 0.04).compile());
    let spec = BackendSpec::micro_full(Some(3));
    let shots = 4000;
    let direct = direct_estimate(&spec, &circuit, shots, 11, 4, None);
    let null = MechanismTilt::null(&circuit);
    let importance = importance_estimate(&spec, &circuit, &null, shots, 11, 4, None);
    // the null tilt samples the physical distribution with the same
    // per-shot RNG stream and unit weights: the two estimates are the
    // same number, not merely close
    assert_eq!(direct.p_l, importance.p_l);
    assert!(direct.p_l > 0.0, "d=3 p=0.04 fails often enough to measure");
    // binomial vs empirical variance differ only by the n/(n-1) Bessel
    // factor
    assert!((direct.std_error - importance.std_error).abs() < 1e-5);
}

#[test]
fn null_tilt_weights_are_exactly_one() {
    let circuit = Arc::new(CircuitLevelCode::rotated(3, 3, 0.03).compile());
    let null = MechanismTilt::null(&circuit);
    let sampler = TiltedCircuitSampler::new(&circuit, &null);
    for index in 0..200 {
        let mut rng = shot_rng(5, index);
        let (_, log_weight) = sampler.sample(&mut rng);
        assert_eq!(log_weight, 0.0, "shot {index}: null tilt LR is exactly 1");
    }
}

#[test]
fn tilted_weights_have_unit_mean() {
    let circuit = Arc::new(CircuitLevelCode::rotated(3, 3, 0.02).compile());
    let tilt = MechanismTilt::uniform(&circuit, 4.0);
    let sampler = TiltedCircuitSampler::new(&circuit, &tilt);
    let shots = 60_000u64;
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    for index in 0..shots {
        let mut rng = shot_rng(42, index);
        let (_, log_weight) = sampler.sample(&mut rng);
        let weight = log_weight.exp();
        sum += weight;
        sum_sq += weight * weight;
    }
    let n = shots as f64;
    let mean = sum / n;
    let std_error = (((sum_sq - sum * sum / n) / (n - 1.0)).max(0.0) / n).sqrt();
    assert!(
        (mean - 1.0).abs() < 5.0 * std_error,
        "E_q[p/q] = 1 violated: mean {mean} ± {std_error}"
    );
    assert!(std_error < 0.05, "x4 tilt weights are well-behaved");
}

#[test]
fn importance_sampling_agrees_with_direct_monte_carlo() {
    let circuit = Arc::new(CircuitLevelCode::rotated(3, 3, 0.03).compile());
    let spec = BackendSpec::micro_full(Some(3));
    let direct = direct_estimate(&spec, &circuit, 20_000, 21, 8, None);
    let tilt = MechanismTilt::uniform(&circuit, 3.0);
    let importance = importance_estimate(&spec, &circuit, &tilt, 6000, 22, 8, None);
    assert!(direct.is_resolved() && importance.is_resolved());
    let combined = (direct.std_error.powi(2) + importance.std_error.powi(2)).sqrt();
    assert!(
        (direct.p_l - importance.p_l).abs() < 5.0 * combined,
        "importance {:.4e} vs direct {:.4e} (combined SE {combined:.2e})",
        importance.p_l,
        direct.p_l
    );
}

#[test]
fn splitting_agrees_with_direct_monte_carlo() {
    let circuit = Arc::new(CircuitLevelCode::rotated(3, 3, 0.03).compile());
    let spec = BackendSpec::micro_full(Some(3));
    let direct = direct_estimate(&spec, &circuit, 20_000, 21, 8, None);
    let config = SplittingConfig {
        max_crossing_faults: 4,
        shots_per_level: 3000,
        background_tilt: 2.0,
    };
    let splitting = splitting_estimate(&spec, &circuit, config, 23, 8, None);
    assert!(splitting.is_resolved());
    assert!(
        splitting.shots <= config.shots_per_level * (config.max_crossing_faults + 1),
        "level budget respected"
    );
    // everything past kmax is covered by the (tiny, exact) tail bound
    assert!(splitting.tail_bound < 1e-6);
    let combined = (direct.std_error.powi(2) + splitting.std_error.powi(2)).sqrt();
    assert!(
        (direct.p_l - splitting.p_l).abs() < 5.0 * combined + splitting.tail_bound,
        "splitting {:.4e} vs direct {:.4e} (combined SE {combined:.2e})",
        splitting.p_l,
        direct.p_l
    );
}

#[test]
fn boosted_tilt_multiplies_observable_crossing_failures() {
    // boosting only the observable-crossing mechanisms makes raw (tilted)
    // failures much more frequent, while reweighting still recovers a
    // rate compatible with the physical one
    let circuit = Arc::new(CircuitLevelCode::rotated(3, 3, 0.01).compile());
    let spec = BackendSpec::micro_full(Some(3));
    let direct = direct_estimate(&spec, &circuit, 30_000, 31, 8, None);
    let boost = MechanismTilt::boost_observable(&circuit, 0.08, 2.0);
    let boosted = importance_estimate(&spec, &circuit, &boost, 8000, 32, 8, None);
    assert!(boosted.is_resolved());
    let combined = (direct.std_error.powi(2) + boosted.std_error.powi(2)).sqrt();
    assert!(
        (direct.p_l - boosted.p_l).abs() < 5.0 * combined,
        "boosted {:.4e} vs direct {:.4e} (combined SE {combined:.2e})",
        boosted.p_l,
        direct.p_l
    );
}
