//! The sharded pipeline must be a pure throughput optimization: for every
//! backend, multi-threaded decoding produces results *bit-identical* to
//! single-threaded decoding — same per-shot outcomes, same logical error
//! counts, same aggregate statistics — across 1/2/8 shards, on both a 2D
//! (repetition) and a 3D (rotated, phenomenological noise) decoding graph.
//!
//! This is the determinism guarantee behind `evaluate_decoder`: shot `i` is
//! sampled from an RNG derived from `(seed, i)`, so the shard layout cannot
//! influence which shots are drawn or how they decode.

use mb_decoder::pipeline::{shot_rng, skewed_workload, DecodePool, ShardedPipeline, ShotOutcome};
use mb_decoder::{evaluate_decoder_sharded, BackendSpec};
use mb_graph::codes::{CodeCapacityRepetitionCode, CodeCapacityRotatedCode, PhenomenologicalCode};
use mb_graph::syndrome::ErrorSampler;
use mb_graph::DecodingGraph;
use std::sync::Arc;

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

fn graphs() -> Vec<(&'static str, Arc<DecodingGraph>)> {
    vec![
        (
            "repetition d=9 p=0.05",
            Arc::new(CodeCapacityRepetitionCode::new(9, 0.05).decoding_graph()),
        ),
        (
            "rotated d=5 p=0.04",
            Arc::new(CodeCapacityRotatedCode::new(5, 0.04).decoding_graph()),
        ),
        (
            "phenomenological d=3 rounds=4 p=0.02",
            Arc::new(PhenomenologicalCode::rotated(3, 4, 0.02).decoding_graph()),
        ),
    ]
}

fn specs(graph: &DecodingGraph) -> Vec<BackendSpec> {
    let _ = graph;
    vec![
        BackendSpec::micro_full(Some(5)),
        BackendSpec::Parity,
        BackendSpec::union_find(),
    ]
}

/// Strips the fields that are legitimately non-deterministic for wall-clock
/// backends, keeping everything the decoding *result* consists of.
fn logical_view(outcome: &ShotOutcome) -> (usize, usize, u64, u64, bool) {
    (
        outcome.shot_index,
        outcome.defects,
        outcome.decoded_observable,
        outcome.expected_observable,
        outcome.is_logical_error(),
    )
}

#[test]
fn per_shot_outcomes_are_identical_across_shard_counts() {
    let shots = 150;
    let seed = 0xA11CE;
    for (name, graph) in graphs() {
        for spec in specs(&graph) {
            let deterministic_latency = spec.build(Arc::clone(&graph)).deterministic_latency();
            let reference = ShardedPipeline::new(spec.clone(), Arc::clone(&graph))
                .with_shards(1)
                .run_sampled(shots, seed);
            assert_eq!(reference.len(), shots);
            for &shards in &SHARD_COUNTS[1..] {
                let outcomes = ShardedPipeline::new(spec.clone(), Arc::clone(&graph))
                    .with_shards(shards)
                    .run_sampled(shots, seed);
                if deterministic_latency {
                    // modeled latency: the full record must match bit for bit
                    assert_eq!(
                        outcomes,
                        reference,
                        "{name} / {}: shards={shards}",
                        spec.name()
                    );
                } else {
                    // wall-clock latency differs run to run; everything else
                    // must match
                    let got: Vec<_> = outcomes.iter().map(logical_view).collect();
                    let want: Vec<_> = reference.iter().map(logical_view).collect();
                    assert_eq!(got, want, "{name} / {}: shards={shards}", spec.name());
                }
            }
        }
    }
}

#[test]
fn aggregate_logical_error_counts_are_identical_across_shard_counts() {
    let shots = 200;
    let seed = 77;
    for (name, graph) in graphs() {
        for spec in specs(&graph) {
            let reference = evaluate_decoder_sharded(&spec, &graph, shots, seed, 1);
            for &shards in &SHARD_COUNTS[1..] {
                let result = evaluate_decoder_sharded(&spec, &graph, shots, seed, shards);
                assert_eq!(
                    result.logical_errors,
                    reference.logical_errors,
                    "{name} / {}: shards={shards}",
                    spec.name()
                );
                assert_eq!(result.shots, reference.shots);
                assert_eq!(result.mean_defects, reference.mean_defects);
                assert_eq!(result.decoder, reference.decoder);
                if spec.build(Arc::clone(&graph)).deterministic_latency() {
                    assert_eq!(
                        result.latencies_ns,
                        reference.latencies_ns,
                        "{name} / {}: shards={shards}",
                        spec.name()
                    );
                }
            }
        }
    }
}

#[test]
fn pipeline_equals_a_hand_rolled_serial_loop() {
    // the pipeline with any shard count must equal a plain loop that builds
    // one backend and decodes the per-shot-seeded samples in order
    let graph = Arc::new(CodeCapacityRotatedCode::new(5, 0.06).decoding_graph());
    let shots = 120;
    let seed = 3;
    for spec in specs(&graph) {
        let sampler = ErrorSampler::new(&graph);
        let mut backend = spec.build(Arc::clone(&graph));
        let serial: Vec<(u64, bool)> = (0..shots)
            .map(|i| {
                let mut rng = shot_rng(seed, i as u64);
                let shot = sampler.sample(&mut rng);
                let outcome = backend.decode(&shot.syndrome);
                (outcome.observable, outcome.observable != shot.observable)
            })
            .collect();
        for &shards in &SHARD_COUNTS {
            let outcomes = ShardedPipeline::new(spec.clone(), Arc::clone(&graph))
                .with_shards(shards)
                .run_sampled(shots as usize, seed);
            let piped: Vec<(u64, bool)> = outcomes
                .iter()
                .map(|o| (o.decoded_observable, o.is_logical_error()))
                .collect();
            assert_eq!(piped, serial, "{}: shards={shards}", spec.name());
        }
    }
}

#[test]
fn work_stealing_pools_are_bit_identical_across_worker_counts() {
    // dedicated pools with 1/2/8 workers × all three backends × a skewed
    // explicit workload (cheap shots + a dense mixed-p tail): the stealing
    // order must never leak into the results
    let shots_per_graph = 60;
    for (name, graph) in graphs() {
        let shots: Arc<[_]> = skewed_workload(&graph, shots_per_graph, 12).into();
        for spec in specs(&graph) {
            let reference = ShardedPipeline::new(spec.clone(), Arc::clone(&graph))
                .with_pool(Arc::new(DecodePool::new(1)))
                .with_shards(1)
                .run_shots_arc(Arc::clone(&shots));
            assert_eq!(reference.len(), shots.len());
            for workers in [2usize, 8] {
                let pool = Arc::new(DecodePool::new(workers));
                let outcomes = ShardedPipeline::new(spec.clone(), Arc::clone(&graph))
                    .with_pool(pool)
                    .with_shards(workers)
                    .run_shots_arc(Arc::clone(&shots));
                let got: Vec<_> = outcomes.iter().map(logical_view).collect();
                let want: Vec<_> = reference.iter().map(logical_view).collect();
                assert_eq!(got, want, "{name} / {}: workers={workers}", spec.name());
                if spec.deterministic_latency() {
                    assert_eq!(
                        outcomes,
                        reference,
                        "{name} / {}: workers={workers}",
                        spec.name()
                    );
                }
            }
        }
    }
}

#[test]
fn back_to_back_evaluations_reuse_pooled_backends() {
    // repeated evaluate calls on one pool: identical results, and the second
    // round must not rebuild any backend (the pooling key is (spec, graph))
    let graph = Arc::new(PhenomenologicalCode::rotated(3, 4, 0.02).decoding_graph());
    let pool = Arc::new(DecodePool::new(2));
    for spec in specs(&graph) {
        let pipeline = ShardedPipeline::new(spec.clone(), Arc::clone(&graph))
            .with_pool(Arc::clone(&pool))
            .with_shards(2);
        let first = pipeline.evaluate(80, 21);
        let built = pool.backends_built();
        let second = pipeline.evaluate(80, 21);
        assert_eq!(
            pool.backends_built(),
            built,
            "{}: second evaluation must hit the backend cache",
            spec.name()
        );
        assert_eq!(first.logical_errors, second.logical_errors);
        assert_eq!(first.mean_defects, second.mean_defects);
        assert_eq!(first.shots, second.shots);
        if spec.deterministic_latency() {
            assert_eq!(first, second, "{}", spec.name());
        }
    }
}

#[test]
fn explicit_shot_lists_are_shard_invariant_too() {
    let graph = Arc::new(PhenomenologicalCode::rotated(3, 3, 0.03).decoding_graph());
    let sampler = ErrorSampler::new(&graph);
    let shots: Vec<_> = (0..90)
        .map(|i| {
            let mut rng = shot_rng(1234, i);
            sampler.sample(&mut rng)
        })
        .collect();
    for spec in specs(&graph) {
        let reference = ShardedPipeline::new(spec.clone(), Arc::clone(&graph))
            .with_shards(1)
            .run_shots(&shots);
        for &shards in &SHARD_COUNTS[1..] {
            let outcomes = ShardedPipeline::new(spec.clone(), Arc::clone(&graph))
                .with_shards(shards)
                .run_shots(&shots);
            let got: Vec<_> = outcomes.iter().map(logical_view).collect();
            let want: Vec<_> = reference.iter().map(logical_view).collect();
            assert_eq!(got, want, "{}: shards={shards}", spec.name());
        }
    }
}
