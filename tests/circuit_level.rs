//! Circuit-level noise: end-to-end properties of the fault-mechanism graph
//! builder, the mechanism-level sampler, and the decoding stack on top.
//!
//! * merged edges carry exactly the XOR-folded probability and
//!   log-likelihood weight of their constituent fault mechanisms;
//! * [`CircuitErrorSampler`] shots are self-consistent (syndrome and
//!   observable derive from the sampled faults) and their per-round defect
//!   structure feeds the streaming front-end;
//! * the batch pipeline and the round-wise streaming path decode
//!   circuit-level shots bit-identically, for every backend;
//! * mechanism-sampled pipeline runs are shard-count invariant;
//! * at the same physical rate `p`, circuit-level noise (per-operation
//!   infidelity `p/10`) yields a strictly lower logical error rate than
//!   phenomenological noise for the micro-blossom backend — the §8
//!   calibration property.

use mb_decoder::evaluation::{evaluate_circuit, evaluate_circuit_sharded, evaluate_decoder};
use mb_decoder::pipeline::{shot_rng, DecodePool, ShardedPipeline};
use mb_decoder::stream::StreamDecoder;
use mb_decoder::BackendSpec;
use mb_graph::circuit::{xor_probability, CircuitLevelCode, CompiledCircuit};
use mb_graph::codes::PhenomenologicalCode;
use mb_graph::syndrome::Shot;
use std::sync::Arc;

fn specs(d: usize) -> Vec<BackendSpec> {
    vec![
        BackendSpec::micro_full(Some(d)),
        BackendSpec::Parity,
        BackendSpec::union_find(),
    ]
}

fn sample_circuit_shots(circuit: &CompiledCircuit, n: usize, seed: u64) -> Vec<Shot> {
    let sampler = circuit.sampler();
    (0..n)
        .map(|i| {
            let mut rng = shot_rng(seed, i as u64);
            sampler.sample(&mut rng)
        })
        .collect()
}

#[test]
fn merged_edge_weights_are_llr_folds_of_their_mechanisms() {
    // property check over a sweep of distances, depths, and rates: every
    // edge's stored probability is the XOR fold of its mechanisms and its
    // weight is the scaler's LLR of that fold
    for (d, rounds, p) in [
        (3usize, 3usize, 0.01),
        (3, 5, 0.002),
        (5, 5, 0.02),
        (5, 2, 0.05),
    ] {
        let circuit = CircuitLevelCode::rotated(d, rounds, p).compile();
        let scaler = circuit.weight_scaler().expect("graph has edges");
        let graph = circuit.graph();
        for e in 0..graph.edge_count() {
            let members = circuit.mechanisms_of_edge(e);
            assert!(!members.is_empty(), "edge {e} has no mechanisms");
            let fold = members.iter().fold(0.0, |acc, &m| {
                xor_probability(acc, circuit.mechanisms()[m].probability)
            });
            let edge = graph.edge(e);
            assert!(
                (edge.error_probability - fold).abs() < 1e-15,
                "d={d} rounds={rounds} p={p} edge {e}: stored {} vs fold {fold}",
                edge.error_probability,
            );
            assert_eq!(
                edge.weight,
                scaler.weight_of(fold),
                "d={d} rounds={rounds} p={p} edge {e}"
            );
            // all constituents must agree on the observable effect, or the
            // merge would corrupt the logical bookkeeping
            for &m in members {
                assert_eq!(
                    circuit.mechanisms()[m].observable_mask,
                    edge.observable_mask,
                    "edge {e} mechanism {m}"
                );
            }
        }
    }
}

#[test]
fn sampled_shots_satisfy_syndrome_consistency() {
    let circuit = CircuitLevelCode::rotated(5, 5, 0.03).compile();
    let sampler = circuit.sampler();
    let graph = circuit.graph();
    for seed in 0..64u64 {
        let mut rng = shot_rng(0xC1AC, seed);
        let faults = sampler.sample_faults(&mut rng);
        let shot = sampler.shot_from_faults(&faults);
        // detector parity recomputed from the fired mechanisms' edge
        // endpoints must equal the shot's syndrome
        let mut parity = vec![false; graph.vertex_count()];
        for &m in &faults {
            let (u, v) = graph.edge(circuit.mechanisms()[m].edge).vertices;
            parity[u] ^= true;
            parity[v] ^= true;
        }
        let defects: Vec<usize> = (0..graph.vertex_count())
            .filter(|&v| parity[v] && !graph.is_virtual(v))
            .collect();
        assert_eq!(shot.syndrome.defects, defects, "seed {seed}");
        // and the ErrorPattern-derived views agree with the shot
        assert_eq!(shot.syndrome, shot.error.syndrome(graph), "seed {seed}");
        assert_eq!(shot.observable, shot.error.observable(graph), "seed {seed}");
        let direct = faults
            .iter()
            .fold(0, |acc, &m| acc ^ circuit.mechanisms()[m].observable_mask);
        assert_eq!(shot.observable, direct, "seed {seed}");
    }
}

#[test]
fn batch_and_stream_agree_bit_identically_on_circuit_shots() {
    let d = 3;
    let circuit = Arc::new(CircuitLevelCode::rotated(d, 4, 0.04).compile());
    let shots = sample_circuit_shots(&circuit, 48, 0xBEEF);
    for spec in specs(d) {
        let deterministic = spec.deterministic_latency();
        let reference = ShardedPipeline::new(spec.clone(), Arc::clone(circuit.graph()))
            .with_shards(2)
            .run_shots(&shots);
        for workers in [1usize, 2, 4] {
            let stream = StreamDecoder::builder(spec.clone(), Arc::clone(circuit.graph()))
                .pool(Arc::new(DecodePool::new(workers)))
                .workers(workers)
                .start();
            // feed each shot round by round, as a real syndrome stream would
            let tickets: Vec<_> = shots
                .iter()
                .map(|shot| {
                    let mut feeder = stream.begin_shot(shot.observable).unwrap();
                    for layer in shot.syndrome.split_by_layer(circuit.graph()) {
                        feeder.push_round(&layer).unwrap();
                    }
                    feeder.finish()
                })
                .collect();
            for (ticket, expected) in tickets.into_iter().zip(&reference) {
                let outcome = ticket.recv().unwrap();
                assert_eq!(
                    outcome.defects,
                    expected.defects,
                    "{} workers={workers}",
                    spec.name()
                );
                assert_eq!(
                    outcome.decoded_observable,
                    expected.decoded_observable,
                    "{} workers={workers}",
                    spec.name()
                );
                assert_eq!(
                    outcome.expected_observable,
                    expected.expected_observable,
                    "{} workers={workers}",
                    spec.name()
                );
                if deterministic {
                    assert_eq!(
                        outcome.latency_ns,
                        expected.latency_ns,
                        "{} workers={workers}",
                        spec.name()
                    );
                }
            }
            stream.close();
        }
    }
}

#[test]
fn circuit_sampling_is_shard_count_invariant() {
    let circuit = Arc::new(CircuitLevelCode::rotated(3, 3, 0.03).compile());
    let spec = BackendSpec::micro_full(Some(3));
    let reference = evaluate_circuit_sharded(&spec, &circuit, 150, 99, 1);
    for shards in [2usize, 4, 8] {
        let result = evaluate_circuit_sharded(&spec, &circuit, 150, 99, shards);
        assert_eq!(result, reference, "shards={shards}");
    }
}

#[test]
fn circuit_level_logical_error_rate_is_below_phenomenological() {
    // §8 calibration: at the same physical p, the per-operation p/10
    // circuit model folds to strictly less noise per channel than the
    // phenomenological model, so exact MWPM must decode it strictly better
    let d = 5;
    let p = 0.03;
    let shots = 3000;
    let spec = BackendSpec::micro_full(Some(d));
    let circuit = Arc::new(CircuitLevelCode::rotated(d, d, p).compile());
    let pheno = Arc::new(PhenomenologicalCode::rotated(d, d, p).decoding_graph());
    let circuit_result = evaluate_circuit(&spec, &circuit, shots, 2025);
    let pheno_result = evaluate_decoder(&spec, &pheno, shots, 2025);
    assert!(
        circuit_result.logical_error_rate() < pheno_result.logical_error_rate(),
        "circuit p_L {} should be strictly below phenomenological p_L {}",
        circuit_result.logical_error_rate(),
        pheno_result.logical_error_rate()
    );
    // and not because nothing happens: circuit shots do carry defects
    assert!(circuit_result.mean_defects > 0.5);
}

#[test]
fn circuit_shots_stress_every_round() {
    // the realistic load generator: defects appear in every fusion layer,
    // not just the first, so round-wise ingestion is genuinely exercised
    let circuit = CircuitLevelCode::rotated(5, 5, 0.04).compile();
    let shots = sample_circuit_shots(&circuit, 400, 0x40D5);
    let rounds = circuit.graph().num_layers();
    let mut per_layer = vec![0usize; rounds];
    for shot in &shots {
        for (t, layer) in shot
            .syndrome
            .split_by_layer(circuit.graph())
            .iter()
            .enumerate()
        {
            per_layer[t] += layer.len();
        }
    }
    for (t, &count) in per_layer.iter().enumerate() {
        assert!(count > 0, "layer {t} never saw a defect across 400 shots");
    }
}
