//! Differential test of parallel-window decoding against the monolithic
//! path.
//!
//! The windowed front-end commits matchings from per-window decodes, so
//! whenever no matched pair straddles two window seams (every pair is then
//! either fully inside one window's view or reconciled by a single seam
//! re-decode that sees both endpoints) its committed corrections compose
//! to a **minimum-weight** perfect matching of the full graph — the
//! monolithic result exactly, up to MWPM degeneracy: equal-weight optima
//! may tie-break differently because window views permute vertex order.
//! Shots are classified by that predicate using the *monolithic* matching:
//! easy shots must agree bit-identically or, when they diverge, prove the
//! degeneracy by matching the monolithic weight exactly (and such ties
//! must stay rare); hard shots (a pair spanning ≥ 2 seams — rare, they
//! require an error chain longer than a window) must agree at the
//! logical-error-rate level.
//!
//! The matrix covers 3 matching-producing backends (micro with its LUT
//! pre-decoder, micro without, parity) × 1/2/8 pool workers; worker count
//! must never change any windowed result (fusion is sequential on the
//! session thread, window decodes are pure functions of their syndrome).

use mb_decoder::{
    BackendSpec, DecodePool, MicroBlossomConfig, StreamDecoder, WindowConfig, WindowedDecoder,
};
use mb_graph::codes::PhenomenologicalCode;
use mb_graph::dijkstra::distance_between;
use mb_graph::syndrome::{ErrorSampler, Shot};
use mb_graph::DecodingGraph;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

const ROUNDS: usize = 10;
const COMMIT: usize = 3;
const OVERLAP: usize = 1;
const SHOTS: usize = 60;

fn graph() -> Arc<DecodingGraph> {
    Arc::new(PhenomenologicalCode::rotated(3, ROUNDS, 0.03).decoding_graph())
}

fn sample_shots(graph: &DecodingGraph, n: usize, seed: u64) -> Vec<Shot> {
    let sampler = ErrorSampler::new(graph);
    (0..n)
        .map(|i| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(i as u64));
            sampler.sample(&mut rng)
        })
        .collect()
}

fn backends(graph: &DecodingGraph) -> Vec<(&'static str, BackendSpec)> {
    vec![
        ("micro+predecoder", BackendSpec::micro_full(Some(3))),
        (
            "micro-no-predecoder",
            BackendSpec::Micro(MicroBlossomConfig::full(graph, Some(3)).without_predecoder()),
        ),
        ("parity", BackendSpec::Parity),
    ]
}

/// Whether the monolithic matching has a pair whose endpoints straddle two
/// or more window seams (the shots the windowed path may legitimately
/// resolve through a different — equal-quality — reconciliation).
fn crosses_two_seams(graph: &DecodingGraph, matching: &mb_blossom::PerfectMatching) -> bool {
    let seams: Vec<usize> = (1..ROUNDS.div_ceil(COMMIT)).map(|k| k * COMMIT).collect();
    matching
        .pairs
        .iter()
        .chain(matching.boundary.iter())
        .any(|&(a, b)| {
            let (t1, t2) = {
                let (x, y) = (graph.layer_of(a), graph.layer_of(b));
                (x.min(y), x.max(y))
            };
            seams.iter().filter(|&&s| t1 < s && s <= t2).count() >= 2
        })
}

#[test]
fn windowed_matches_monolithic_across_backends_and_worker_counts() {
    let graph = graph();
    let shots = sample_shots(&graph, SHOTS, 1000);
    for (label, spec) in backends(&graph) {
        // monolithic reference (single backend instance, batch decode)
        let mut backend = spec.build(Arc::clone(&graph));
        let monolithic: Vec<_> = shots.iter().map(|s| backend.decode(&s.syndrome)).collect();

        let mut reference: Option<Vec<(u64, i64)>> = None;
        for workers in [1usize, 2, 8] {
            let pool = Arc::new(DecodePool::new(workers));
            let decoder = WindowedDecoder::new(
                spec.clone(),
                Arc::clone(&graph),
                WindowConfig::new(COMMIT, OVERLAP),
            )
            .with_pool(pool);
            // (observable, committed matching weight) per shot
            let windowed: Vec<(u64, i64)> = shots
                .iter()
                .map(|shot| {
                    let mut feeder = decoder.begin_shot(shot.observable);
                    for round in shot.syndrome.split_by_layer(&graph) {
                        feeder.push_round(&round);
                    }
                    feeder.flush();
                    let weight = feeder
                        .take_committed()
                        .iter()
                        .map(|c| {
                            distance_between(&graph, c.pair.0, c.pair.1)
                                .expect("committed pairs are connected")
                        })
                        .sum();
                    (feeder.finish().observable, weight)
                })
                .collect();

            // worker count must never change a windowed result
            match &reference {
                None => reference = Some(windowed.clone()),
                Some(expected) => {
                    assert_eq!(&windowed, expected, "{label}: workers={workers} diverged")
                }
            }

            let mut hard = 0usize;
            let mut ties = 0usize;
            let mut mono_failures = 0usize;
            let mut win_failures = 0usize;
            for ((shot, mono), &(win_obs, win_weight)) in
                shots.iter().zip(&monolithic).zip(&windowed)
            {
                let matching = mono
                    .matching
                    .as_ref()
                    .expect("matching-producing backends under test");
                if crosses_two_seams(&graph, matching) {
                    hard += 1;
                    mono_failures += (mono.observable != shot.observable) as usize;
                    win_failures += (win_obs != shot.observable) as usize;
                } else if win_obs != mono.observable {
                    // divergence on an easy shot must be a degenerate
                    // optimum: the windowed commits reach the monolithic
                    // minimum weight exactly
                    assert_eq!(
                        win_weight,
                        matching.weight(&graph),
                        "{label}: windowed diverged on an easy shot without \
                         matching the monolithic weight (workers={workers})"
                    );
                    ties += 1;
                }
            }
            // degenerate tie-breaks are rare; anything more means a seam bug
            assert!(
                ties <= SHOTS / 10,
                "{label}: {ties} equal-weight divergences out of {SHOTS} shots"
            );
            // hard shots: logical accuracy at parity, not degradation
            assert!(
                win_failures <= mono_failures + hard.div_ceil(4),
                "{label}: windowed logical failures {win_failures} vs monolithic \
                 {mono_failures} over {hard} hard shots"
            );
        }
    }
}

#[test]
fn single_window_covering_the_shot_is_bit_identical() {
    let graph = graph();
    let shots = sample_shots(&graph, 30, 2000);
    for (label, spec) in backends(&graph) {
        let mut backend = spec.build(Arc::clone(&graph));
        let decoder = WindowedDecoder::new(
            spec.clone(),
            Arc::clone(&graph),
            WindowConfig::new(ROUNDS, 0),
        )
        .with_pool(Arc::new(DecodePool::new(2)));
        assert_eq!(decoder.plan().window_count(), 1);
        for shot in &shots {
            let mono = backend.decode(&shot.syndrome);
            let win = decoder.decode_shot(shot);
            // a single full-span window decodes the original graph itself:
            // exactly the monolithic result, on every shot
            assert_eq!(win.observable, mono.observable, "{label}");
            assert_eq!(win.seam_redecodes, 0, "{label}");
        }
    }
}

#[test]
fn empty_windows_skip_the_pool_and_commit_nothing() {
    let graph = graph();
    let pool = Arc::new(DecodePool::new(2));
    let decoder = WindowedDecoder::new(
        BackendSpec::micro_full(Some(3)),
        Arc::clone(&graph),
        WindowConfig::new(COMMIT, OVERLAP),
    )
    .with_pool(Arc::clone(&pool));
    // defects only in the middle commit region: first and last windows are
    // empty and must never become pool jobs
    let mid_defect = (0..graph.vertex_count())
        .find(|&v| !graph.is_virtual(v) && graph.layer_of(v) == COMMIT + 1)
        .expect("middle commit region has a regular vertex");
    let mut feeder = decoder.begin_shot(0);
    for t in 0..ROUNDS {
        if t == COMMIT + 1 {
            feeder.push_round(&[mid_defect]);
        } else {
            feeder.push_round(&[]);
        }
    }
    let windows_before = pool.windows_decoded();
    let outcome = feeder.finish();
    assert_eq!(outcome.windows_decoded as usize, ROUNDS.div_ceil(COMMIT));
    // only the one non-empty window (plus any seam re-decode) hit the pool
    let window_jobs = pool.windows_decoded() - windows_before;
    assert!(
        (1..=2).contains(&window_jobs),
        "expected 1 window job (+ optional seam), got {window_jobs}"
    );
}

#[test]
fn overlap_at_least_commit_still_matches_monolithic_quality() {
    let graph = graph();
    let shots = sample_shots(&graph, 30, 3000);
    let spec = BackendSpec::micro_full(Some(3));
    let mut backend = spec.build(Arc::clone(&graph));
    // overlap ≥ commit: views overlap heavily, boundary windows degenerate
    // toward the full span — legal, and quality must not degrade
    let decoder = WindowedDecoder::new(spec.clone(), Arc::clone(&graph), WindowConfig::new(2, 4))
        .with_pool(Arc::new(DecodePool::new(2)));
    let mut mono_failures = 0usize;
    let mut win_failures = 0usize;
    for shot in &shots {
        let mono = backend.decode(&shot.syndrome);
        let win = decoder.decode_shot(shot);
        mono_failures += (mono.observable != shot.observable) as usize;
        win_failures += (win.observable != shot.observable) as usize;
    }
    assert!(
        win_failures <= mono_failures + 2,
        "overlap ≥ commit degraded accuracy: {win_failures} vs {mono_failures}"
    );
}

#[test]
fn dropping_a_windowed_stream_feeder_mid_window_leaks_nothing() {
    let graph = graph();
    let pool = Arc::new(DecodePool::new(2));
    let stream = StreamDecoder::builder(BackendSpec::micro_full(Some(3)), Arc::clone(&graph))
        .workers(1)
        .pool(Arc::clone(&pool))
        .start();
    let shots = sample_shots(&graph, 3, 4000);
    for shot in &shots {
        let mut feeder = stream
            .begin_windowed_shot(WindowConfig::new(COMMIT, OVERLAP), 0)
            .unwrap();
        let rounds = shot.syndrome.split_by_layer(&graph);
        for round in rounds.iter().take(COMMIT + 1) {
            feeder.push_round(round);
        }
        drop(feeder); // mid-window: in-flight jobs awaited, state released
    }
    // the pool and stream still work: a full windowed shot and a plain
    // streamed shot both complete after the drops
    let shot = &shots[0];
    let mut feeder = stream
        .begin_windowed_shot(WindowConfig::new(COMMIT, OVERLAP), shot.observable)
        .unwrap();
    for round in shot.syndrome.split_by_layer(&graph) {
        feeder.push_round(&round);
    }
    let outcome = feeder.finish();
    assert_eq!(outcome.rounds, ROUNDS);
    let ticket = stream.submit(shot.clone()).unwrap();
    let decoded = ticket.recv().unwrap();
    assert_eq!(decoded.shot_index, 0);
    let stats = stream.close();
    // abandoned sessions folded their counters in before releasing
    assert!(stats.windows_decoded >= 3);
    assert_eq!(stats.submitted, 1);
}
