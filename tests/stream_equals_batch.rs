//! Round-wise fusion (§6) must not change the decoding result: stream
//! decoding finds exactly the same minimum weight as batch decoding, and the
//! work performed after the last measurement round (the decoding latency
//! that matters) is bounded regardless of how many rounds the block has.

use mb_decoder::{MicroBlossomConfig, MicroBlossomDecoder};
use mb_graph::codes::PhenomenologicalCode;
use mb_graph::syndrome::ErrorSampler;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

#[test]
fn stream_and_batch_agree_on_matching_weight() {
    for (d, rounds, p) in [(3usize, 4usize, 0.02), (3, 8, 0.01), (5, 5, 0.005)] {
        let graph = Arc::new(PhenomenologicalCode::rotated(d, rounds, p).decoding_graph());
        let mut stream = MicroBlossomDecoder::new(
            Arc::clone(&graph),
            MicroBlossomConfig::full(&graph, Some(d)),
        );
        let mut batch = MicroBlossomDecoder::new(
            Arc::clone(&graph),
            MicroBlossomConfig::with_parallel_primal(&graph, Some(d)),
        );
        let sampler = ErrorSampler::new(&graph);
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        for _ in 0..60 {
            let shot = sampler.sample(&mut rng);
            let (stream_matching, _) = stream.decode_matching(&shot.syndrome);
            let (batch_matching, _) = batch.decode_matching(&shot.syndrome);
            assert!(stream_matching.is_valid_for(&shot.syndrome.defects));
            assert_eq!(
                stream_matching.weight(&graph),
                batch_matching.weight(&graph),
                "d={d} rounds={rounds} syndrome {:?}",
                shot.syndrome
            );
        }
    }
}

#[test]
fn stream_latency_stays_flat_as_rounds_grow() {
    let d = 3;
    let p = 0.002;
    let shots = 60;
    let mut per_round_cycles = Vec::new();
    for rounds in [4usize, 12] {
        let graph = Arc::new(PhenomenologicalCode::rotated(d, rounds, p).decoding_graph());
        let mut stream = MicroBlossomDecoder::new(
            Arc::clone(&graph),
            MicroBlossomConfig::full(&graph, Some(d)),
        );
        let sampler = ErrorSampler::new(&graph);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut cycles = 0u64;
        for _ in 0..shots {
            let shot = sampler.sample(&mut rng);
            let (_, breakdown) = stream.decode_matching(&shot.syndrome);
            cycles += breakdown.hardware_cycles + breakdown.bus_reads;
        }
        per_round_cycles.push(cycles as f64 / shots as f64);
    }
    // tripling the number of rounds must not triple the post-last-round work
    assert!(
        per_round_cycles[1] < per_round_cycles[0] * 2.0,
        "stream decoding work grew with block size: {per_round_cycles:?}"
    );
}
